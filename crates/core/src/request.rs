//! The unified collective request API.
//!
//! The paper's workflow (§1.3, §10) is *model → select → generate → run*. A
//! [`CollectiveRequest`] is the value form of the first half of that
//! pipeline: one plain-data description of any collective this crate can
//! build — Reduce / AllReduce / Broadcast, on a 1D line or a 2D grid, with a
//! [`Schedule`] that is either an explicit pattern or [`Schedule::Auto`]
//! model-driven selection. Requests are cheap to copy, hashable and
//! comparable, which is what lets [`crate::session::Session`] key its plan
//! cache on them directly.
//!
//! # The collective suite
//!
//! Every [`CollectiveKind`] maps to a paper-grounded phase decomposition
//! (the building blocks live in [`crate::phases`] and
//! [`crate::collectives`]) and a per-PE I/O shape contract, with
//! `c = vector_len / p` the shard ("chunk") size:
//!
//! | kind            | paper      | phase decomposition                    | input per PE `x` | output per PE `x` |
//! |-----------------|------------|----------------------------------------|------------------|-------------------|
//! | `Reduce`        | §5         | selected reduction tree                | full vector      | root: full vector |
//! | `AllReduce`     | §6         | reduce+bcast, or RS rounds + AG rounds | full vector      | full vector       |
//! | `Broadcast`     | §4.2, §7.1 | flood                                  | root: full       | full vector       |
//! | `ReduceScatter` | §6.2 half  | RS rounds + homing rotation            | full vector      | `c` at `x·c`      |
//! | `AllGather`     | §6.2 half  | AG rounds                              | `c` at `x·c`     | full vector       |
//! | `Gather`        | §4.1, §5   | pipelined westward line stream         | `c` at `x·c`     | root: full vector |
//! | `Scatter`       | §4.1, §5   | pipelined eastward line stream         | root: full       | `c` at `x·c`      |
//! | `AllToAll`      | §6.2 ring  | `p-1` store-and-forward rotations      | full vector      | full vector       |
//!
//! The sharded kinds share one layout — shard `i` at offset `i·c` — so
//! their outputs feed the next collective's inputs without host-side
//! reshuffling (`Scatter → ReduceScatter → AllGather` is the
//! `examples/mlp_layer.rs` pipeline). Rooted kinds (`Reduce`, `Broadcast`,
//! `Gather`, `Scatter`) accept [`CollectiveRequest::with_root`]; the
//! symmetric kinds reject it with
//! [`CollectiveError::RootlessCollective`].

use wse_fabric::geometry::{Coord, GridDim};
use wse_fabric::program::ReduceOp;
use wse_fabric::wavelet::Color;
use wse_model::selection::{self, ChosenAlgorithm};
use wse_model::Machine;

use crate::allreduce::{
    allreduce_1d_plan, allreduce_2d_plan, xy_allreduce_2d_plan, AllReducePattern,
};
use crate::broadcast::{flood_broadcast_2d_plan, flood_broadcast_plan};
use crate::collectives::{
    all_to_all_rotate_plan, allgather_ring_plan, gather_line_plan, reduce_scatter_ring_plan,
    scatter_line_plan,
};
use crate::error::CollectiveError;
use crate::path::LinePath;
use crate::plan::CollectivePlan;
use crate::reduce::{
    reduce_1d_plan, reduce_2d_plan, Reduce2dPattern, ReducePattern, BROADCAST_COLOR,
};

/// An opaque tenant identity for per-tenant admission budgets.
///
/// Tenants are a *submission-side* attribute: a request's results do not
/// depend on who submitted it, so the tenant is deliberately **not** part of
/// [`CollectiveRequest`] (which is the plan-cache key — tenants sharing a
/// request shape must share its cached plan, not fragment the cache). The
/// serving front-end accepts the tenant next to the request
/// (`CollectiveService::submit_as`) and meters each tenant's token bucket in
/// [`crate::serve::AdmissionConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant unattributed submissions (`submit`/`try_submit`) are
    /// accounted to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Which collective a request describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Reduce to the root PE.
    Reduce,
    /// Reduce whose result ends up on every participating PE.
    AllReduce,
    /// Flooding broadcast of the root's vector (§4.2, §7.1).
    Broadcast,
    /// Reduce whose result is sharded over the PEs: PE `x` ends with the
    /// fully reduced shard `x` (the first half of the Ring AllReduce).
    ReduceScatter,
    /// Concatenate the PEs' shards onto every PE (the second half of the
    /// Ring AllReduce).
    AllGather,
    /// Concatenate the PEs' shards onto the root PE.
    Gather,
    /// Distribute the root's vector as shards over the PEs.
    Scatter,
    /// Personalised exchange: PE `x` sends chunk `d` of its vector to PE
    /// `d` and receives chunk `s` from every PE `s`.
    AllToAll,
}

impl CollectiveKind {
    /// Whether the collective has a distinguished root PE. The symmetric
    /// kinds reject [`CollectiveRequest::with_root`] with
    /// [`CollectiveError::RootlessCollective`].
    pub fn is_rooted(&self) -> bool {
        matches!(
            self,
            CollectiveKind::Reduce
                | CollectiveKind::Broadcast
                | CollectiveKind::Gather
                | CollectiveKind::Scatter
        )
    }
}

/// The set of PEs a collective runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A row of `p` PEs (the 1D setting of §4–§6).
    Line(u32),
    /// A full 2D grid (§7).
    Grid(GridDim),
}

impl Topology {
    /// A row of `p` PEs.
    pub fn line(p: u32) -> Self {
        Topology::Line(p)
    }

    /// A `width × height` grid.
    pub fn grid(width: u32, height: u32) -> Self {
        Topology::Grid(GridDim::new(width, height))
    }

    /// The grid the topology occupies.
    pub fn dim(&self) -> GridDim {
        match self {
            Topology::Line(p) => GridDim::row(*p),
            Topology::Grid(dim) => *dim,
        }
    }

    /// Number of participating PEs.
    pub fn num_pes(&self) -> usize {
        self.dim().num_pes()
    }
}

/// How the plan for a request is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Let the performance model pick the best fixed algorithm for the
    /// request's shape (the paper's §1.3/§10 workflow; the regions of
    /// Figures 8, 10 and 13).
    Auto,
    /// An explicit 1D Reduce pattern (valid for `Reduce` on a line).
    Reduce1d(ReducePattern),
    /// An explicit 2D Reduce pattern (valid for `Reduce` on a grid).
    Reduce2d(Reduce2dPattern),
    /// An explicit 1D AllReduce pattern (valid for `AllReduce` on a line).
    AllReduce1d(AllReducePattern),
    /// An explicit 2D AllReduce: the given 2D Reduce followed by the 2D
    /// flooding Broadcast (§7.4; valid for `AllReduce` on a grid).
    AllReduce2d(Reduce2dPattern),
    /// The bandwidth-inefficient per-axis X-Y AllReduce of §7.4, provided so
    /// the paper's comparison can be reproduced (valid for `AllReduce` on a
    /// grid).
    AllReduceXy(ReducePattern),
    /// The ring ReduceScatter (valid for `ReduceScatter` on a line).
    ReduceScatterRing,
    /// The ring AllGather (valid for `AllGather` on a line).
    AllGatherRing,
    /// The pipelined line Gather (valid for `Gather` on a line).
    GatherLine,
    /// The pipelined line Scatter (valid for `Scatter` on a line).
    ScatterLine,
    /// The store-and-forward rotation All-to-All (valid for `AllToAll` on a
    /// line).
    AllToAllRotate,
}

/// A fully specified collective request: the cache key and the input to plan
/// generation.
///
/// Build one with [`CollectiveRequest::reduce`],
/// [`CollectiveRequest::allreduce`] or [`CollectiveRequest::broadcast`] and
/// refine it with the `with_*` builders:
///
/// ```
/// use wse_collectives::prelude::*;
///
/// let request = CollectiveRequest::reduce(Topology::line(16), 256)
///     .with_op(ReduceOp::Max)
///     .with_schedule(Schedule::Reduce1d(ReducePattern::TwoPhase));
/// assert_eq!(request.vector_len, 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectiveRequest {
    /// The collective to perform.
    pub kind: CollectiveKind,
    /// Where it runs.
    pub topology: Topology,
    /// Vector length in 32-bit wavelets per participating PE.
    pub vector_len: u32,
    /// The element-wise reduction operation (ignored by `Broadcast`).
    pub op: ReduceOp,
    /// Explicit pattern or model-driven selection.
    pub schedule: Schedule,
    /// The root PE. All plans of this reproduction root at the north-west
    /// corner `(0, 0)`, matching the paper's layouts.
    pub root: Coord,
}

impl CollectiveRequest {
    fn new(kind: CollectiveKind, topology: Topology, vector_len: u32) -> Self {
        CollectiveRequest {
            kind,
            topology,
            vector_len,
            op: ReduceOp::Sum,
            schedule: Schedule::Auto,
            root: Coord::new(0, 0),
        }
    }

    /// A Reduce request (sum, model-selected schedule by default).
    pub fn reduce(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::Reduce, topology, vector_len)
    }

    /// An AllReduce request (sum, model-selected schedule by default).
    pub fn allreduce(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::AllReduce, topology, vector_len)
    }

    /// A Broadcast request.
    pub fn broadcast(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::Broadcast, topology, vector_len)
    }

    /// A ReduceScatter request (sum, model-selected schedule by default).
    /// `vector_len` is the *full* per-PE input length; outputs are one
    /// `vector_len / p` shard per PE.
    pub fn reduce_scatter(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::ReduceScatter, topology, vector_len)
    }

    /// An AllGather request. `vector_len` is the *gathered* length; inputs
    /// are one `vector_len / p` shard per PE.
    pub fn allgather(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::AllGather, topology, vector_len)
    }

    /// A Gather request (to the canonical root). `vector_len` is the
    /// gathered length; inputs are one `vector_len / p` shard per PE.
    pub fn gather(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::Gather, topology, vector_len)
    }

    /// A Scatter request (from the canonical root). `vector_len` is the
    /// root's full input length; outputs are one `vector_len / p` shard per
    /// PE.
    pub fn scatter(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::Scatter, topology, vector_len)
    }

    /// An All-to-All request: chunk `d` of PE `x`'s `vector_len`-element
    /// input goes to PE `d`, chunk slot `s` of its output comes from PE `s`.
    pub fn all_to_all(topology: Topology, vector_len: u32) -> Self {
        Self::new(CollectiveKind::AllToAll, topology, vector_len)
    }

    /// Use the given reduction operation.
    pub fn with_op(mut self, op: ReduceOp) -> Self {
        self.op = op;
        self
    }

    /// Use the given schedule instead of model-driven selection.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Use the given root PE on a rooted collective (`Reduce`, `Broadcast`,
    /// `Gather`, `Scatter`). Rootless kinds — every participant of an
    /// AllReduce, ReduceScatter, AllGather or All-to-All plays the same
    /// role — are rejected with [`CollectiveError::RootlessCollective`]
    /// instead of silently ignoring the hint. Only the canonical `(0, 0)`
    /// root is currently supported; other values are rejected at resolution
    /// time.
    pub fn with_root(mut self, root: Coord) -> Result<Self, CollectiveError> {
        if !self.kind.is_rooted() {
            return Err(CollectiveError::RootlessCollective { kind: self.kind });
        }
        self.root = root;
        Ok(self)
    }

    /// Check the request's parameters without building a plan.
    pub fn validate(&self) -> Result<(), CollectiveError> {
        if self.vector_len == 0 {
            return Err(CollectiveError::InvalidRequest {
                reason: "collectives operate on at least one wavelet".into(),
            });
        }
        match self.topology {
            Topology::Line(0) => {
                return Err(CollectiveError::InvalidRequest {
                    reason: "a line topology needs at least one PE".into(),
                })
            }
            Topology::Grid(dim) if dim.num_pes() == 0 => {
                return Err(CollectiveError::InvalidRequest {
                    reason: "a grid topology needs at least one PE".into(),
                })
            }
            _ => {}
        }
        if self.root != Coord::new(0, 0) {
            return Err(CollectiveError::InvalidRequest {
                reason: format!("only the canonical root (0, 0) is supported, got {}", self.root),
            });
        }
        if matches!(
            self.kind,
            CollectiveKind::ReduceScatter
                | CollectiveKind::AllGather
                | CollectiveKind::Gather
                | CollectiveKind::Scatter
                | CollectiveKind::AllToAll
        ) {
            let Topology::Line(p) = self.topology else {
                return Err(CollectiveError::InvalidRequest {
                    reason: format!("{:?} is only implemented on 1D lines", self.kind),
                });
            };
            if p < 2 {
                return Err(CollectiveError::InvalidRequest {
                    reason: format!("{:?} needs at least two PEs", self.kind),
                });
            }
            if !self.vector_len.is_multiple_of(p) {
                return Err(CollectiveError::InvalidRequest {
                    reason: format!(
                        "{:?} requires the vector length ({}) to be divisible by the PE \
                         count ({p})",
                        self.kind, self.vector_len
                    ),
                });
            }
        }
        if self.kind == CollectiveKind::AllReduce {
            if let (Topology::Line(p), Schedule::AllReduce1d(AllReducePattern::Ring)) =
                (self.topology, self.schedule)
            {
                if p >= 2 && !self.vector_len.is_multiple_of(p) {
                    return Err(CollectiveError::InvalidRequest {
                        reason: format!(
                            "the ring all-reduce requires the vector length ({}) to be \
                             divisible by the PE count ({p})",
                            self.vector_len
                        ),
                    });
                }
                if p < 2 {
                    return Err(CollectiveError::InvalidRequest {
                        reason: "the ring needs at least two PEs".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether the request's schedule can realise its kind on its topology —
    /// the plan-free mirror of the [`CollectiveRequest::resolve`] match. An
    /// exhaustive test pins the two against each other across every
    /// kind × topology × schedule combination.
    fn schedule_fits(&self) -> bool {
        use CollectiveKind as K;
        use Schedule as S;
        use Topology as T;
        matches!(
            (self.kind, self.topology, self.schedule),
            (K::Reduce, T::Line(_), S::Auto | S::Reduce1d(_))
                | (K::Reduce, T::Grid(_), S::Auto | S::Reduce2d(_))
                | (K::AllReduce, T::Line(_), S::Auto | S::AllReduce1d(_))
                | (K::AllReduce, T::Grid(_), S::Auto | S::AllReduce2d(_) | S::AllReduceXy(_))
                | (K::Broadcast, _, S::Auto)
                | (K::ReduceScatter, T::Line(_), S::Auto | S::ReduceScatterRing)
                | (K::AllGather, T::Line(_), S::Auto | S::AllGatherRing)
                | (K::Gather, T::Line(_), S::Auto | S::GatherLine)
                | (K::Scatter, T::Line(_), S::Auto | S::ScatterLine)
                | (K::AllToAll, T::Line(_), S::Auto | S::AllToAllRotate)
        )
    }

    /// The request's input contract without building a plan: how many input
    /// vectors a caller must supply and the length of each (the `input per
    /// PE x` column of the table in the [module docs](self)).
    ///
    /// Validates the request first, so the shard division below is exact.
    pub fn input_shape(&self) -> Result<(usize, u32), CollectiveError> {
        self.validate()?;
        let p = self.topology.num_pes();
        Ok(match self.kind {
            // Rooted single-source kinds: one full vector at the root.
            CollectiveKind::Broadcast | CollectiveKind::Scatter => (1, self.vector_len),
            // Sharded-input kinds: one chunk per PE (validate() guarantees
            // divisibility).
            CollectiveKind::AllGather | CollectiveKind::Gather => (p, self.vector_len / p as u32),
            // Full-vector-per-PE kinds.
            CollectiveKind::Reduce
            | CollectiveKind::AllReduce
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllToAll => (p, self.vector_len),
        })
    }

    /// Check, **without building a plan**, whether this request and these
    /// inputs would execute: parameter validation, schedule compatibility
    /// and the per-kind input contract, reporting the same typed error (and
    /// checking in the same order) as the plan-building path
    /// ([`CollectiveRequest::resolve`] followed by input validation against
    /// the plan).
    ///
    /// This is the admission layer's validity oracle: the serving front-end
    /// must know *at submission time* whether an item will consume a
    /// noise-run index — exactly the items a [`crate::session::Session`]
    /// would execute — and it must know without paying for plan generation
    /// on the submit path.
    pub fn check_submission(&self, inputs: &[Vec<f32>]) -> Result<(), CollectiveError> {
        self.validate()?;
        if !self.schedule_fits() {
            return Err(CollectiveError::ScheduleMismatch {
                kind: self.kind,
                topology: self.topology,
                schedule: self.schedule,
            });
        }
        let (count, len) = self.input_shape()?;
        if inputs.len() != count {
            return Err(CollectiveError::InputCountMismatch { expected: count, got: inputs.len() });
        }
        for (index, input) in inputs.iter().enumerate() {
            if input.len() != len as usize {
                return Err(CollectiveError::InputLengthMismatch {
                    index,
                    expected: len,
                    got: input.len(),
                });
            }
        }
        Ok(())
    }

    /// The model's predicted runtime for this request in cycles, **without
    /// building a plan** — the pure §1.3 "model" step, cheap enough for a
    /// serving submit path.
    ///
    /// [`Schedule::Auto`] returns the same prediction the resolved plan
    /// would carry ([`ResolvedPlan::predicted_cycles`]); explicit schedules
    /// are priced via their model-side algorithm, so cost-aware scheduling
    /// covers them too (a resolved explicit plan records no choice). Invalid
    /// requests and mismatched schedules return the same typed errors as
    /// [`CollectiveRequest::resolve`].
    pub fn predicted_cycles(&self, machine: &Machine) -> Result<f64, CollectiveError> {
        self.validate()?;
        if !self.schedule_fits() {
            return Err(CollectiveError::ScheduleMismatch {
                kind: self.kind,
                topology: self.topology,
                schedule: self.schedule,
            });
        }
        let b = self.vector_len as u64;
        Ok(match (self.kind, self.topology, self.schedule) {
            (CollectiveKind::Reduce, Topology::Line(p), schedule) => match schedule {
                Schedule::Reduce1d(pattern) => {
                    pattern.model_algorithm().cycles(p as u64, b, machine, None)
                }
                _ => selection::choose_reduce_1d(p as u64, b, machine).predicted_cycles,
            },
            (CollectiveKind::Reduce, Topology::Grid(dim), schedule) => {
                let (m, n) = (dim.height as u64, dim.width as u64);
                match schedule {
                    Schedule::Reduce2d(pattern) => {
                        pattern.model_algorithm().cycles(m, n, b, machine, None, None)
                    }
                    _ => selection::choose_reduce_2d(m, n, b, machine).predicted_cycles,
                }
            }
            (CollectiveKind::AllReduce, Topology::Line(p), schedule) => match schedule {
                Schedule::AllReduce1d(pattern) => {
                    pattern.model_algorithm().cycles(p as u64, b, machine, None)
                }
                _ => selection::choose_allreduce_1d(p as u64, b, machine).predicted_cycles,
            },
            (CollectiveKind::AllReduce, Topology::Grid(dim), schedule) => {
                let (m, n) = (dim.height as u64, dim.width as u64);
                match schedule {
                    Schedule::AllReduce2d(pattern) => {
                        pattern.model_algorithm().allreduce_cycles(m, n, b, machine, None, None)
                    }
                    Schedule::AllReduceXy(pattern) => {
                        // Per-axis Reduce-then-Broadcast with the given 1D
                        // pattern (§7.4), including Auto-Gen phases (which
                        // the fixed-phase `costs_2d::xy_allreduce` excludes).
                        let alg = pattern.model_algorithm();
                        let x = alg.cycles(n, b, machine, None);
                        let y = alg.cycles(m, b, machine, None);
                        wse_model::costs_1d::reduce_then_broadcast(x, n, b, machine)
                            + wse_model::costs_1d::reduce_then_broadcast(y, m, b, machine)
                    }
                    _ => selection::choose_allreduce_2d(m, n, b, machine).predicted_cycles,
                }
            }
            (CollectiveKind::Broadcast, Topology::Line(p), _) => {
                selection::choose_broadcast_1d(p as u64, b, machine).predicted_cycles
            }
            (CollectiveKind::Broadcast, Topology::Grid(dim), _) => {
                selection::choose_broadcast_2d(dim.height as u64, dim.width as u64, b, machine)
                    .predicted_cycles
            }
            (CollectiveKind::ReduceScatter, Topology::Line(p), _) => {
                selection::choose_reduce_scatter_1d(p as u64, b, machine).predicted_cycles
            }
            (CollectiveKind::AllGather, Topology::Line(p), _) => {
                selection::choose_allgather_1d(p as u64, b, machine).predicted_cycles
            }
            (CollectiveKind::Gather, Topology::Line(p), _) => {
                selection::choose_gather_1d(p as u64, b, machine).predicted_cycles
            }
            (CollectiveKind::Scatter, Topology::Line(p), _) => {
                selection::choose_scatter_1d(p as u64, b, machine).predicted_cycles
            }
            (CollectiveKind::AllToAll, Topology::Line(p), _) => {
                selection::choose_all_to_all_1d(p as u64, b, machine).predicted_cycles
            }
            (
                CollectiveKind::ReduceScatter
                | CollectiveKind::AllGather
                | CollectiveKind::Gather
                | CollectiveKind::Scatter
                | CollectiveKind::AllToAll,
                Topology::Grid(_),
                _,
            ) => unreachable!("validate() rejects suite kinds on grid topologies"),
        })
    }

    /// Resolve the request into an executable plan (uncached).
    ///
    /// [`Schedule::Auto`] requests consult the performance model
    /// ([`wse_model::selection`]) and record the model's structured
    /// [`wse_model::Choice`]; explicit schedules go straight to the plan
    /// builders. Sessions call this through their plan cache — prefer
    /// [`crate::session::Session::plan`] when resolving repeatedly.
    pub fn resolve(&self, machine: &Machine) -> Result<ResolvedPlan, CollectiveError> {
        self.validate()?;
        let mismatch = || CollectiveError::ScheduleMismatch {
            kind: self.kind,
            topology: self.topology,
            schedule: self.schedule,
        };
        let b = self.vector_len;
        match (self.kind, self.topology) {
            (CollectiveKind::Reduce, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => {
                    let choice = selection::choose_reduce_1d(p as u64, b as u64, machine);
                    let ChosenAlgorithm::Reduce1d(alg) = choice.algorithm else {
                        unreachable!("choose_reduce_1d returns a 1D Reduce algorithm");
                    };
                    let pattern = ReducePattern::from_model(alg);
                    Ok(ResolvedPlan::auto(reduce_1d_plan(pattern, p, b, self.op, machine), choice))
                }
                Schedule::Reduce1d(pattern) => Ok(ResolvedPlan::explicit(
                    reduce_1d_plan(pattern, p, b, self.op, machine),
                    pattern.name(),
                )),
                _ => Err(mismatch()),
            },
            (CollectiveKind::Reduce, Topology::Grid(dim)) => match self.schedule {
                Schedule::Auto => {
                    let choice = selection::choose_reduce_2d(
                        dim.height as u64,
                        dim.width as u64,
                        b as u64,
                        machine,
                    );
                    let ChosenAlgorithm::Reduce2d(alg) = choice.algorithm else {
                        unreachable!("choose_reduce_2d returns a 2D Reduce algorithm");
                    };
                    let pattern = Reduce2dPattern::from_model(alg);
                    Ok(ResolvedPlan::auto(
                        reduce_2d_plan(pattern, dim, b, self.op, machine),
                        choice,
                    ))
                }
                Schedule::Reduce2d(pattern) => Ok(ResolvedPlan::explicit(
                    reduce_2d_plan(pattern, dim, b, self.op, machine),
                    pattern.name(),
                )),
                _ => Err(mismatch()),
            },
            (CollectiveKind::AllReduce, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => {
                    let choice = selection::choose_allreduce_1d(p as u64, b as u64, machine);
                    let ChosenAlgorithm::AllReduce1d(alg) = choice.algorithm else {
                        unreachable!("choose_allreduce_1d returns a 1D AllReduce algorithm");
                    };
                    let pattern = AllReducePattern::from_model(alg);
                    // The ring requires the vector to split evenly over the
                    // PEs; fall back to the best reduce-then-broadcast plan
                    // otherwise (the model still reports its original choice).
                    let pattern = match pattern {
                        AllReducePattern::Ring if p < 2 || !b.is_multiple_of(p) => {
                            AllReducePattern::ReduceBroadcast(ReducePattern::AutoGen)
                        }
                        other => other,
                    };
                    Ok(ResolvedPlan::auto(
                        allreduce_1d_plan(pattern, p, b, self.op, machine),
                        choice,
                    ))
                }
                Schedule::AllReduce1d(pattern) => Ok(ResolvedPlan::explicit(
                    allreduce_1d_plan(pattern, p, b, self.op, machine),
                    pattern.name(),
                )),
                _ => Err(mismatch()),
            },
            (CollectiveKind::AllReduce, Topology::Grid(dim)) => match self.schedule {
                Schedule::Auto => {
                    let choice = selection::choose_allreduce_2d(
                        dim.height as u64,
                        dim.width as u64,
                        b as u64,
                        machine,
                    );
                    let ChosenAlgorithm::AllReduce2d(alg) = choice.algorithm else {
                        unreachable!("choose_allreduce_2d returns a 2D algorithm");
                    };
                    let pattern = Reduce2dPattern::from_model(alg);
                    Ok(ResolvedPlan::auto(
                        allreduce_2d_plan(pattern, dim, b, self.op, machine),
                        choice,
                    ))
                }
                Schedule::AllReduce2d(pattern) => Ok(ResolvedPlan::explicit(
                    allreduce_2d_plan(pattern, dim, b, self.op, machine),
                    pattern.name(),
                )),
                Schedule::AllReduceXy(pattern) => Ok(ResolvedPlan::explicit(
                    xy_allreduce_2d_plan(pattern, dim, b, self.op, machine),
                    format!("X-Y AllReduce {}", pattern.name()),
                )),
                _ => Err(mismatch()),
            },
            (CollectiveKind::Broadcast, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => {
                    let path = LinePath::row(GridDim::row(p), 0);
                    Ok(ResolvedPlan::explicit(
                        flood_broadcast_plan(&path, b, Color::new(BROADCAST_COLOR)),
                        "Flood",
                    ))
                }
                _ => Err(mismatch()),
            },
            (CollectiveKind::Broadcast, Topology::Grid(dim)) => match self.schedule {
                Schedule::Auto => Ok(ResolvedPlan::explicit(
                    flood_broadcast_2d_plan(dim, b, Color::new(BROADCAST_COLOR)),
                    "2D Flood",
                )),
                _ => Err(mismatch()),
            },
            (CollectiveKind::ReduceScatter, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => Ok(ResolvedPlan::auto(
                    reduce_scatter_ring_plan(p, b, self.op),
                    selection::choose_reduce_scatter_1d(p as u64, b as u64, machine),
                )),
                Schedule::ReduceScatterRing => Ok(ResolvedPlan::explicit(
                    reduce_scatter_ring_plan(p, b, self.op),
                    "Ring-ReduceScatter",
                )),
                _ => Err(mismatch()),
            },
            (CollectiveKind::AllGather, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => Ok(ResolvedPlan::auto(
                    allgather_ring_plan(p, b),
                    selection::choose_allgather_1d(p as u64, b as u64, machine),
                )),
                Schedule::AllGatherRing => {
                    Ok(ResolvedPlan::explicit(allgather_ring_plan(p, b), "Ring-AllGather"))
                }
                _ => Err(mismatch()),
            },
            (CollectiveKind::Gather, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => Ok(ResolvedPlan::auto(
                    gather_line_plan(p, b),
                    selection::choose_gather_1d(p as u64, b as u64, machine),
                )),
                Schedule::GatherLine => {
                    Ok(ResolvedPlan::explicit(gather_line_plan(p, b), "Line-Gather"))
                }
                _ => Err(mismatch()),
            },
            (CollectiveKind::Scatter, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => Ok(ResolvedPlan::auto(
                    scatter_line_plan(p, b),
                    selection::choose_scatter_1d(p as u64, b as u64, machine),
                )),
                Schedule::ScatterLine => {
                    Ok(ResolvedPlan::explicit(scatter_line_plan(p, b), "Line-Scatter"))
                }
                _ => Err(mismatch()),
            },
            (CollectiveKind::AllToAll, Topology::Line(p)) => match self.schedule {
                Schedule::Auto => Ok(ResolvedPlan::auto(
                    all_to_all_rotate_plan(p, b),
                    selection::choose_all_to_all_1d(p as u64, b as u64, machine),
                )),
                Schedule::AllToAllRotate => {
                    Ok(ResolvedPlan::explicit(all_to_all_rotate_plan(p, b), "Rotate-AllToAll"))
                }
                _ => Err(mismatch()),
            },
            (
                CollectiveKind::ReduceScatter
                | CollectiveKind::AllGather
                | CollectiveKind::Gather
                | CollectiveKind::Scatter
                | CollectiveKind::AllToAll,
                Topology::Grid(_),
            ) => {
                unreachable!("validate() rejects suite kinds on grid topologies")
            }
        }
    }
}

/// The output of resolving a request: the executable plan plus how it was
/// chosen.
#[derive(Debug, Clone)]
pub struct ResolvedPlan {
    /// The executable plan.
    pub plan: CollectivePlan,
    /// Name of the algorithm realised by the plan (for explicit schedules)
    /// or chosen by the model (for `Auto`).
    pub algorithm: String,
    /// The model's structured choice, present for `Auto` schedules.
    pub choice: Option<wse_model::Choice>,
}

impl ResolvedPlan {
    fn explicit(plan: CollectivePlan, algorithm: impl Into<String>) -> Self {
        ResolvedPlan { plan, algorithm: algorithm.into(), choice: None }
    }

    fn auto(plan: CollectivePlan, choice: wse_model::Choice) -> Self {
        ResolvedPlan { plan, algorithm: choice.algorithm.name().to_string(), choice: Some(choice) }
    }

    /// The model's predicted runtime in cycles, when the schedule was `Auto`.
    pub fn predicted_cycles(&self) -> Option<f64> {
        self.choice.map(|c| c.predicted_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{assert_outputs_close, expected_reduce, run_plan, RunConfig};

    fn machine() -> Machine {
        Machine::wse2()
    }

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| (i + 2 * j) as f32 * 0.125 - 1.0).collect()).collect()
    }

    #[test]
    fn requests_are_cache_key_material() {
        use std::collections::HashSet;
        let a = CollectiveRequest::reduce(Topology::line(16), 64);
        let b = a.with_op(ReduceOp::Max);
        let c = CollectiveRequest::reduce(Topology::grid(4, 4), 64);
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(c);
        set.insert(a); // duplicate
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn every_kind_and_topology_resolves_and_runs() {
        let m = machine();
        let cases = [
            CollectiveRequest::reduce(Topology::line(12), 16),
            CollectiveRequest::reduce(Topology::grid(4, 3), 8),
            CollectiveRequest::allreduce(Topology::line(8), 24),
            CollectiveRequest::allreduce(Topology::grid(3, 3), 8),
        ];
        for request in cases {
            let resolved = request.resolve(&m).expect("auto requests resolve");
            assert!(resolved.choice.is_some(), "{request:?} should carry a model choice");
            let data = inputs(request.topology.num_pes(), request.vector_len as usize);
            let outcome = run_plan(&resolved.plan, &data, &RunConfig::default()).unwrap();
            assert_outputs_close(&outcome, &expected_reduce(&data, request.op), 1e-4);
        }
    }

    #[test]
    fn suite_kinds_resolve_and_run_with_kind_aware_shapes() {
        let m = machine();
        let (p, b) = (4u32, 16u32);
        let chunk = (b / p) as usize;
        let full = inputs(p as usize, b as usize);
        let shards: Vec<Vec<f32>> =
            (0..p as usize).map(|x| full[0][x * chunk..(x + 1) * chunk].to_vec()).collect();

        let rs = CollectiveRequest::reduce_scatter(Topology::line(p), b).resolve(&m).unwrap();
        assert_eq!(rs.algorithm, "Ring-ReduceScatter");
        assert!(rs.choice.is_some());
        let outcome = run_plan(&rs.plan, &full, &RunConfig::default()).unwrap();
        let reduced = expected_reduce(&full, ReduceOp::Sum);
        for (x, (_, shard)) in outcome.outputs.iter().enumerate() {
            assert_eq!(shard, &reduced[x * chunk..(x + 1) * chunk]);
        }

        let ag = CollectiveRequest::allgather(Topology::line(p), b).resolve(&m).unwrap();
        assert_eq!(ag.algorithm, "Ring-AllGather");
        let outcome = run_plan(&ag.plan, &shards, &RunConfig::default()).unwrap();
        for (_, out) in &outcome.outputs {
            assert_eq!(out, &full[0]);
        }

        let gather = CollectiveRequest::gather(Topology::line(p), b).resolve(&m).unwrap();
        assert_eq!(gather.algorithm, "Line-Gather");
        let outcome = run_plan(&gather.plan, &shards, &RunConfig::default()).unwrap();
        assert_eq!(outcome.outputs.len(), 1);
        assert_eq!(outcome.outputs[0].1, full[0]);

        let scatter = CollectiveRequest::scatter(Topology::line(p), b).resolve(&m).unwrap();
        assert_eq!(scatter.algorithm, "Line-Scatter");
        let outcome = run_plan(&scatter.plan, &full[..1], &RunConfig::default()).unwrap();
        for (x, (_, shard)) in outcome.outputs.iter().enumerate() {
            assert_eq!(shard, &shards[x]);
        }

        let a2a = CollectiveRequest::all_to_all(Topology::line(p), b).resolve(&m).unwrap();
        assert_eq!(a2a.algorithm, "Rotate-AllToAll");
        let outcome = run_plan(&a2a.plan, &full, &RunConfig::default()).unwrap();
        for (x, (_, out)) in outcome.outputs.iter().enumerate() {
            let expected: Vec<f32> = (0..p as usize)
                .flat_map(|s| full[s][x * chunk..(x + 1) * chunk].iter().copied())
                .collect();
            assert_eq!(out, &expected);
        }

        // Wrong-shaped inputs are rejected by the kind-aware contract: the
        // AllGather expects chunk-sized shards, not full vectors.
        let err = run_plan(&ag.plan, &full, &RunConfig::default()).unwrap_err();
        assert_eq!(
            err,
            CollectiveError::InputLengthMismatch {
                index: 0,
                expected: chunk as u32,
                got: b as usize
            }
        );
    }

    #[test]
    fn rootless_collectives_reject_with_root() {
        for request in [
            CollectiveRequest::allreduce(Topology::line(4), 8),
            CollectiveRequest::reduce_scatter(Topology::line(4), 8),
            CollectiveRequest::allgather(Topology::line(4), 8),
            CollectiveRequest::all_to_all(Topology::line(4), 8),
        ] {
            let err = request.with_root(Coord::new(0, 0)).unwrap_err();
            assert_eq!(err, CollectiveError::RootlessCollective { kind: request.kind });
        }
        for request in [
            CollectiveRequest::reduce(Topology::line(4), 8),
            CollectiveRequest::broadcast(Topology::line(4), 8),
            CollectiveRequest::gather(Topology::line(4), 8),
            CollectiveRequest::scatter(Topology::line(4), 8),
        ] {
            assert!(request.with_root(Coord::new(0, 0)).is_ok(), "{:?} is rooted", request.kind);
        }
    }

    #[test]
    fn broadcast_requests_resolve_for_both_topologies() {
        let m = machine();
        for request in [
            CollectiveRequest::broadcast(Topology::line(9), 12),
            CollectiveRequest::broadcast(Topology::grid(4, 5), 7),
        ] {
            let resolved = request.resolve(&m).unwrap();
            let data = inputs(1, request.vector_len as usize);
            let outcome = run_plan(&resolved.plan, &data, &RunConfig::default()).unwrap();
            assert_eq!(outcome.outputs.len(), request.topology.num_pes());
            for (_, out) in &outcome.outputs {
                assert_eq!(out, &data[0]);
            }
        }
    }

    #[test]
    fn explicit_schedules_build_the_named_pattern() {
        let m = machine();
        let request = CollectiveRequest::reduce(Topology::line(16), 64)
            .with_schedule(Schedule::Reduce1d(ReducePattern::TwoPhase));
        let resolved = request.resolve(&m).unwrap();
        assert_eq!(resolved.algorithm, "Two-Phase");
        assert!(resolved.choice.is_none());
        assert!(resolved.plan.name().contains("Two-Phase"));
    }

    #[test]
    fn mismatched_schedules_are_rejected() {
        let m = machine();
        let request = CollectiveRequest::reduce(Topology::line(8), 16)
            .with_schedule(Schedule::Reduce2d(Reduce2dPattern::Snake));
        assert!(matches!(request.resolve(&m), Err(CollectiveError::ScheduleMismatch { .. })));
        let request = CollectiveRequest::broadcast(Topology::line(8), 16)
            .with_schedule(Schedule::Reduce1d(ReducePattern::Star));
        assert!(matches!(request.resolve(&m), Err(CollectiveError::ScheduleMismatch { .. })));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let m = machine();
        let zero_b = CollectiveRequest::reduce(Topology::line(8), 0);
        assert!(matches!(zero_b.resolve(&m), Err(CollectiveError::InvalidRequest { .. })));
        let bad_root = CollectiveRequest::reduce(Topology::line(8), 4)
            .with_root(Coord::new(1, 0))
            .expect("Reduce is rooted");
        assert!(matches!(bad_root.resolve(&m), Err(CollectiveError::InvalidRequest { .. })));
        let grid_suite = CollectiveRequest::allgather(Topology::grid(4, 4), 16);
        assert!(matches!(grid_suite.resolve(&m), Err(CollectiveError::InvalidRequest { .. })));
        let indivisible_suite = CollectiveRequest::all_to_all(Topology::line(4), 13);
        assert!(matches!(
            indivisible_suite.resolve(&m),
            Err(CollectiveError::InvalidRequest { .. })
        ));
        let indivisible_ring = CollectiveRequest::allreduce(Topology::line(4), 13)
            .with_schedule(Schedule::AllReduce1d(AllReducePattern::Ring));
        assert!(matches!(
            indivisible_ring.resolve(&m),
            Err(CollectiveError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn auto_ring_choice_falls_back_when_indivisible() {
        let m = machine();
        // b = 4098 is not divisible by p = 4; the model may pick the ring but
        // the resolved plan must still be runnable.
        let request = CollectiveRequest::allreduce(Topology::line(4), 4098);
        let resolved = request.resolve(&m).unwrap();
        let data = inputs(4, 4098);
        let outcome = run_plan(&resolved.plan, &data, &RunConfig::default()).unwrap();
        assert_outputs_close(&outcome, &expected_reduce(&data, ReduceOp::Sum), 1e-3);
    }

    fn request_for(kind: CollectiveKind, topology: Topology, vector_len: u32) -> CollectiveRequest {
        CollectiveRequest {
            kind,
            topology,
            vector_len,
            op: ReduceOp::Sum,
            schedule: Schedule::Auto,
            root: Coord::new(0, 0),
        }
    }

    /// One representative schedule per `Schedule` variant family, including
    /// the Auto-Gen patterns (whose predictions require a solver).
    fn schedule_matrix() -> Vec<Schedule> {
        vec![
            Schedule::Auto,
            Schedule::Reduce1d(ReducePattern::Star),
            Schedule::Reduce1d(ReducePattern::AutoGen),
            Schedule::Reduce2d(Reduce2dPattern::Xy(ReducePattern::Chain)),
            Schedule::Reduce2d(Reduce2dPattern::Snake),
            Schedule::AllReduce1d(AllReducePattern::ReduceBroadcast(ReducePattern::Tree)),
            Schedule::AllReduce1d(AllReducePattern::Ring),
            Schedule::AllReduce2d(Reduce2dPattern::Xy(ReducePattern::TwoPhase)),
            Schedule::AllReduceXy(ReducePattern::AutoGen),
            Schedule::ReduceScatterRing,
            Schedule::AllGatherRing,
            Schedule::GatherLine,
            Schedule::ScatterLine,
            Schedule::AllToAllRotate,
        ]
    }

    fn kind_matrix() -> [CollectiveKind; 8] {
        [
            CollectiveKind::Reduce,
            CollectiveKind::AllReduce,
            CollectiveKind::Broadcast,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllGather,
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
            CollectiveKind::AllToAll,
        ]
    }

    #[test]
    fn check_submission_mirrors_the_plan_building_path() {
        let m = machine();
        // b = 16 divides the line's p = 4 (valid suite requests); b = 13
        // exercises the divisibility rejections; b = 0 the basic validation.
        for kind in kind_matrix() {
            for topology in [Topology::line(4), Topology::grid(2, 3)] {
                for schedule in schedule_matrix() {
                    for b in [16u32, 13, 0] {
                        let request = request_for(kind, topology, b).with_schedule(schedule);
                        // Candidate input sets: the contract shape (when one
                        // exists), an off-by-one count, an off-by-one length
                        // and a generic junk shape.
                        let mut candidates = vec![vec![vec![0.0f32; 3]; 2]];
                        if let Ok((count, len)) = request.input_shape() {
                            candidates.push(vec![vec![0.0; len as usize]; count]);
                            candidates.push(vec![vec![0.0; len as usize]; count + 1]);
                            let mut long = vec![vec![0.0; len as usize]; count];
                            long[0].push(0.0);
                            candidates.push(long);
                        }
                        for inputs in candidates {
                            let via_plan = request
                                .resolve(&m)
                                .and_then(|r| crate::runner::check_inputs(&r.plan, &inputs));
                            let plan_free = request.check_submission(&inputs);
                            assert_eq!(
                                plan_free,
                                via_plan,
                                "check_submission diverges from resolve+check_inputs for \
                                 {request:?} with {} inputs",
                                inputs.len()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn predicted_cycles_matches_resolution_for_auto_and_errors_in_step() {
        let m = machine();
        for kind in kind_matrix() {
            for topology in [Topology::line(4), Topology::grid(2, 3)] {
                for schedule in schedule_matrix() {
                    for b in [16u32, 13, 0] {
                        let request = request_for(kind, topology, b).with_schedule(schedule);
                        match (request.predicted_cycles(&m), request.resolve(&m)) {
                            (Ok(predicted), Ok(resolved)) => {
                                assert!(
                                    predicted.is_finite() && predicted >= 0.0,
                                    "{request:?} predicted {predicted}"
                                );
                                // Auto predictions must equal the choice the
                                // resolved plan records.
                                if let Some(from_plan) = resolved.predicted_cycles() {
                                    assert_eq!(
                                        predicted, from_plan,
                                        "plan-free prediction diverges for {request:?}"
                                    );
                                }
                            }
                            (Err(a), Err(b)) => {
                                assert_eq!(a, b, "error mismatch for {request:?}")
                            }
                            (a, b) => panic!(
                                "predicted_cycles and resolve disagree on viability for \
                                 {request:?}: {a:?} vs {:?}",
                                b.map(|r| r.algorithm)
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn explicit_predictions_never_beat_the_auto_choice() {
        let m = machine();
        // Auto minimises over the same candidate families the explicit
        // schedules come from, so an explicit pick can tie but never win.
        let cases = [
            (
                CollectiveRequest::reduce(Topology::line(12), 64),
                Schedule::Reduce1d(ReducePattern::Star),
            ),
            (
                CollectiveRequest::reduce(Topology::line(12), 64),
                Schedule::Reduce1d(ReducePattern::AutoGen),
            ),
            (
                CollectiveRequest::reduce(Topology::grid(4, 5), 32),
                Schedule::Reduce2d(Reduce2dPattern::Snake),
            ),
            (
                CollectiveRequest::allreduce(Topology::line(8), 64),
                Schedule::AllReduce1d(AllReducePattern::Ring),
            ),
            (
                CollectiveRequest::allreduce(Topology::grid(3, 4), 16),
                Schedule::AllReduce2d(Reduce2dPattern::Xy(ReducePattern::Chain)),
            ),
        ];
        for (auto_request, explicit) in cases {
            let auto = auto_request.predicted_cycles(&m).unwrap();
            let pinned = auto_request.with_schedule(explicit).predicted_cycles(&m).unwrap();
            assert!(
                pinned >= auto - 1e-9,
                "explicit {explicit:?} predicts {pinned}, beating Auto's {auto}"
            );
        }
        // The XY AllReduce is not in Auto's candidate set; its prediction
        // just has to be a sane positive number.
        let xy = CollectiveRequest::allreduce(Topology::grid(3, 4), 16)
            .with_schedule(Schedule::AllReduceXy(ReducePattern::Tree))
            .predicted_cycles(&m)
            .unwrap();
        assert!(xy.is_finite() && xy > 0.0);
    }

    #[test]
    fn input_shape_matches_the_resolved_plan_contract() {
        let m = machine();
        let (p, b) = (4u32, 16u32);
        let cases = [
            CollectiveRequest::reduce(Topology::line(p), b),
            CollectiveRequest::allreduce(Topology::line(p), b),
            CollectiveRequest::broadcast(Topology::line(p), b),
            CollectiveRequest::broadcast(Topology::grid(2, 3), b),
            CollectiveRequest::reduce_scatter(Topology::line(p), b),
            CollectiveRequest::allgather(Topology::line(p), b),
            CollectiveRequest::gather(Topology::line(p), b),
            CollectiveRequest::scatter(Topology::line(p), b),
            CollectiveRequest::all_to_all(Topology::line(p), b),
        ];
        for request in cases {
            let (count, len) = request.input_shape().unwrap();
            let plan = request.resolve(&m).unwrap().plan;
            assert_eq!(count, plan.data_pes().len(), "{:?} input count", request.kind);
            for (_, expected) in plan.input_specs() {
                assert_eq!(len, *expected, "{:?} input length", request.kind);
            }
        }
    }

    #[test]
    fn tenant_ids_order_and_display() {
        assert_eq!(TenantId::DEFAULT, TenantId(0));
        assert!(TenantId(1) < TenantId(2));
        assert_eq!(TenantId(7).to_string(), "tenant-7");
    }
}
