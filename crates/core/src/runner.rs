//! Executing plans on the fabric simulator and checking their results.

use wse_fabric::engine::RunReport;
use wse_fabric::geometry::Coord;
use wse_fabric::program::ReduceOp;
use wse_fabric::{EngineKind, Fabric, FabricParams, NoiseModel};

use crate::error::CollectiveError;
use crate::plan::CollectivePlan;

/// Configuration of a simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Hardware parameters of the fabric (ramp latency, cycle limit).
    pub params: FabricParams,
    /// Optional thermal-noise model (random no-op insertion).
    pub noise: Option<NoiseModel>,
}

impl RunConfig {
    /// A configuration with a non-default ramp latency.
    pub fn with_ramp_latency(ramp_latency: u64) -> Self {
        RunConfig { params: FabricParams::with_ramp_latency(ramp_latency), noise: None }
    }

    /// The same configuration with a different fabric engine. The default is
    /// [`EngineKind::Fast`]; pass [`EngineKind::Reference`] to run on the
    /// exhaustive cycle-stepper (the two are observably byte-identical — see
    /// [`wse_fabric::engine`]).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.params.engine = engine;
        self
    }
}

/// The result of running a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The fabric's run report (cycles, energy, contention, ...).
    pub report: RunReport,
    /// For every result PE of the plan, its output vector.
    pub outputs: Vec<(Coord, Vec<f32>)>,
}

impl RunOutcome {
    /// The measured runtime of the collective: the cycle at which the last
    /// PE finished its program.
    pub fn runtime_cycles(&self) -> u64 {
        self.report.max_finish()
    }
}

/// Execute a plan on a fresh fabric.
///
/// `inputs` provides one vector per entry of [`CollectivePlan::data_pes`],
/// in the same order; each vector's length must match the plan's per-PE
/// input shape contract ([`CollectivePlan::input_specs`] — the full
/// [`CollectivePlan::vector_len`] for most collectives, one chunk for
/// sharded inputs). Sessions
/// ([`crate::session::Session::run`]) execute the same way but reuse one
/// resettable fabric per grid instead of allocating a new mesh per call.
pub fn run_plan(
    plan: &CollectivePlan,
    inputs: &[Vec<f32>],
    config: &RunConfig,
) -> Result<RunOutcome, CollectiveError> {
    // Validate before allocating the mesh: a wrong-shaped input must not
    // pay for (and immediately drop) a full fabric.
    check_inputs(plan, inputs)?;
    let mut fabric = Fabric::new(plan.dim(), config.params);
    fabric.set_noise(config.noise.clone());
    execute_on(&mut fabric, plan, inputs)
}

/// Check that `inputs` matches a plan's data PEs and per-PE input shape
/// contract ([`CollectivePlan::input_specs`]): full-length vectors for most
/// collectives, chunk-sized shards for the sharded kinds (e.g. AllGather).
pub(crate) fn check_inputs(
    plan: &CollectivePlan,
    inputs: &[Vec<f32>],
) -> Result<(), CollectiveError> {
    if inputs.len() != plan.data_pes().len() {
        return Err(CollectiveError::InputCountMismatch {
            expected: plan.data_pes().len(),
            got: inputs.len(),
        });
    }
    for (index, (input, (_, expected))) in inputs.iter().zip(plan.input_specs()).enumerate() {
        if input.len() != *expected as usize {
            return Err(CollectiveError::InputLengthMismatch {
                index,
                expected: *expected,
                got: input.len(),
            });
        }
    }
    Ok(())
}

/// Install `plan` and `inputs` on an idle (fresh or reset) fabric of the
/// plan's dimensions and run it to completion.
///
/// Callers must have validated `inputs` with [`check_inputs`] first; both
/// entry points ([`run_plan`] and `Session::run_resolved`) do so before
/// touching a fabric, which also keeps the hot session path to one
/// validation pass per run.
pub(crate) fn execute_on(
    fabric: &mut Fabric,
    plan: &CollectivePlan,
    inputs: &[Vec<f32>],
) -> Result<RunOutcome, CollectiveError> {
    debug_assert!(check_inputs(plan, inputs).is_ok(), "execute_on called with unchecked inputs");
    plan.apply(fabric);
    for ((at, (offset, _)), data) in plan.data_pes().iter().zip(plan.input_specs()).zip(inputs) {
        if *offset == 0 {
            fabric.set_local(*at, data);
        } else {
            fabric.set_local_at(*at, *offset, data);
        }
    }
    let report = fabric.run()?;
    let outputs = plan
        .result_pes()
        .iter()
        .zip(plan.output_specs())
        .map(|(at, (offset, len))| {
            let start = *offset as usize;
            (*at, fabric.local(*at)[start..start + *len as usize].to_vec())
        })
        .collect();
    Ok(RunOutcome { report, outputs })
}

/// The reference result of reducing `inputs` element-wise with `op`
/// (left-to-right order, which is also the order the plans accumulate in).
pub fn expected_reduce(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<f32> {
    assert!(!inputs.is_empty());
    let len = inputs[0].len();
    let mut out = inputs[0].clone();
    for input in &inputs[1..] {
        assert_eq!(input.len(), len);
        for (o, v) in out.iter_mut().zip(input) {
            *o = op.apply(*o, *v);
        }
    }
    out
}

/// The largest element-wise relative error between `actual` and `expected`
/// (with a small absolute floor so exact zeros compare cleanly).
pub fn max_relative_error(actual: &[f32], expected: &[f32]) -> f32 {
    assert_eq!(actual.len(), expected.len());
    actual.iter().zip(expected).map(|(a, e)| (a - e).abs() / e.abs().max(1e-6)).fold(0.0, f32::max)
}

/// Assert that every output of an outcome matches the expected vector up to
/// floating-point reassociation error.
pub fn assert_outputs_close(outcome: &RunOutcome, expected: &[f32], tolerance: f32) {
    for (at, output) in &outcome.outputs {
        let err = max_relative_error(output, expected);
        assert!(
            err <= tolerance,
            "output at {at} deviates from the reference by {err} (tolerance {tolerance})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_reduce_applies_op_elementwise() {
        let inputs = vec![vec![1.0f32, 2.0, 3.0], vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]];
        assert_eq!(expected_reduce(&inputs, ReduceOp::Sum), vec![12.0, 15.0, 18.0]);
        assert_eq!(expected_reduce(&inputs, ReduceOp::Max), vec![7.0, 8.0, 9.0]);
        assert_eq!(expected_reduce(&inputs, ReduceOp::Min), vec![1.0, 2.0, 3.0]);
        assert_eq!(expected_reduce(&inputs, ReduceOp::Prod), vec![28.0, 80.0, 162.0]);
    }

    #[test]
    fn relative_error_handles_zero_references() {
        assert_eq!(max_relative_error(&[0.0], &[0.0]), 0.0);
        assert!(max_relative_error(&[1.0, 2.2], &[1.0, 2.0]) > 0.09);
    }

    #[test]
    fn input_mismatches_are_typed_errors() {
        use crate::broadcast::flood_broadcast_plan;
        use crate::path::LinePath;
        use wse_fabric::geometry::GridDim;
        use wse_fabric::wavelet::Color;

        let path = LinePath::row(GridDim::row(4), 0);
        let plan = flood_broadcast_plan(&path, 8, Color::new(0));
        let err = run_plan(&plan, &[], &RunConfig::default()).unwrap_err();
        assert_eq!(err, CollectiveError::InputCountMismatch { expected: 1, got: 0 });
        let err = run_plan(&plan, &[vec![0.0; 3]], &RunConfig::default()).unwrap_err();
        assert_eq!(err, CollectiveError::InputLengthMismatch { index: 0, expected: 8, got: 3 });
    }
}
