//! Model-driven algorithm selection: from `(P, B)` to an executable plan.
//!
//! This is the workflow the paper advocates (§1.3, §10): instead of
//! hand-tuning, evaluate the performance model for the concrete problem
//! size, pick the best schedule, and generate its code. The functions here
//! are thin shims over the unified request API — each builds a
//! [`CollectiveRequest`] with [`Schedule::Auto`](crate::request::Schedule)
//! and resolves it — kept for source compatibility with the original
//! free-function interface. New code should use
//! [`crate::session::Session::plan`], which resolves the same requests
//! through a plan cache.

use wse_fabric::geometry::GridDim;
use wse_fabric::program::ReduceOp;
use wse_model::Machine;

use crate::plan::CollectivePlan;
use crate::request::{CollectiveRequest, Topology};

/// A plan together with the model's reasoning for choosing it.
#[derive(Debug, Clone)]
pub struct SelectedPlan {
    /// The executable plan.
    pub plan: CollectivePlan,
    /// The model's predicted runtime for the chosen algorithm, in cycles.
    pub predicted_cycles: f64,
    /// The name of the chosen algorithm.
    pub algorithm: String,
}

fn selected(request: CollectiveRequest, machine: &Machine) -> SelectedPlan {
    let resolved = request
        .resolve(machine)
        .unwrap_or_else(|e| panic!("auto request {request:?} failed to resolve: {e}"));
    SelectedPlan {
        predicted_cycles: resolved.predicted_cycles().unwrap_or_default(),
        algorithm: resolved.algorithm,
        plan: resolved.plan,
    }
}

/// Choose the best *fixed* 1D Reduce for `(p, b)` according to the model and
/// build its plan. (The Auto-Gen schedule, which always matches or beats the
/// fixed patterns under the model, is available via
/// [`crate::reduce::ReducePattern::AutoGen`].)
pub fn select_reduce_1d(p: u32, b: u32, op: ReduceOp, machine: &Machine) -> SelectedPlan {
    selected(CollectiveRequest::reduce(Topology::line(p), b).with_op(op), machine)
}

/// Choose the best fixed 1D AllReduce for `(p, b)` and build its plan
/// (the regions of Figure 8).
pub fn select_allreduce_1d(p: u32, b: u32, op: ReduceOp, machine: &Machine) -> SelectedPlan {
    selected(CollectiveRequest::allreduce(Topology::line(p), b).with_op(op), machine)
}

/// Choose the best fixed 2D Reduce for an `dim` grid and build its plan
/// (the regions of Figure 13).
pub fn select_reduce_2d(dim: GridDim, b: u32, op: ReduceOp, machine: &Machine) -> SelectedPlan {
    selected(CollectiveRequest::reduce(Topology::Grid(dim), b).with_op(op), machine)
}

/// Choose the best fixed 2D AllReduce for an `dim` grid and build its plan
/// (the regions of Figure 10).
pub fn select_allreduce_2d(dim: GridDim, b: u32, op: ReduceOp, machine: &Machine) -> SelectedPlan {
    selected(CollectiveRequest::allreduce(Topology::Grid(dim), b).with_op(op), machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{assert_outputs_close, expected_reduce, run_plan, RunConfig};

    fn machine() -> Machine {
        Machine::wse2()
    }

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| (0..b).map(|j| (i + j) as f32 * 0.01 + 1.0).collect()).collect()
    }

    #[test]
    fn selected_1d_reduce_runs_and_is_correct() {
        for (p, b) in [(8u32, 4u32), (16, 64), (12, 300)] {
            let selected = select_reduce_1d(p, b, ReduceOp::Sum, &machine());
            let data = inputs(p as usize, b as usize);
            let outcome = run_plan(&selected.plan, &data, &RunConfig::default()).unwrap();
            assert_outputs_close(&outcome, &expected_reduce(&data, ReduceOp::Sum), 1e-4);
            assert!(selected.predicted_cycles > 0.0);
        }
    }

    #[test]
    fn selected_1d_allreduce_runs_and_is_correct() {
        for (p, b) in [(4u32, 64u32), (8, 16), (6, 30)] {
            let selected = select_allreduce_1d(p, b, ReduceOp::Sum, &machine());
            let data = inputs(p as usize, b as usize);
            let outcome = run_plan(&selected.plan, &data, &RunConfig::default()).unwrap();
            assert_eq!(outcome.outputs.len(), p as usize);
            assert_outputs_close(&outcome, &expected_reduce(&data, ReduceOp::Sum), 1e-4);
        }
    }

    #[test]
    fn selected_2d_plans_run_and_are_correct() {
        let dim = GridDim::new(4, 4);
        let b = 16;
        let data = inputs(16, b as usize);
        let expected = expected_reduce(&data, ReduceOp::Sum);

        let reduce = select_reduce_2d(dim, b, ReduceOp::Sum, &machine());
        let outcome = run_plan(&reduce.plan, &data, &RunConfig::default()).unwrap();
        assert_outputs_close(&outcome, &expected, 1e-4);

        let allreduce = select_allreduce_2d(dim, b, ReduceOp::Sum, &machine());
        let outcome = run_plan(&allreduce.plan, &data, &RunConfig::default()).unwrap();
        assert_eq!(outcome.outputs.len(), 16);
        assert_outputs_close(&outcome, &expected, 1e-4);
    }

    #[test]
    fn selection_matches_the_model_regions() {
        let m = machine();
        // Huge vectors on few PEs: ring (or chain) territory.
        let s = select_allreduce_1d(4, 4096, ReduceOp::Sum, &m);
        assert_eq!(s.algorithm, "Ring");
        // Intermediate vectors on many PEs: two-phase territory.
        let s = select_reduce_1d(256, 256, ReduceOp::Sum, &m);
        assert_eq!(s.algorithm, "Two-Phase");
    }

    #[test]
    fn ring_fallback_when_vector_does_not_divide() {
        let m = machine();
        // b = 4098 is not divisible by 4, but the model may still pick the
        // ring; the selected plan must nevertheless be runnable.
        let s = select_allreduce_1d(4, 4098, ReduceOp::Sum, &m);
        let data = inputs(4, 4098);
        let outcome = run_plan(&s.plan, &data, &RunConfig::default()).unwrap();
        assert_outputs_close(&outcome, &expected_reduce(&data, ReduceOp::Sum), 1e-3);
    }
}
