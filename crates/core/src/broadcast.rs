//! Flooding Broadcast plans (§4.2 and §7.1).
//!
//! Multicast support makes broadcasting as cheap as sending a single
//! message: the root streams its vector once and every router duplicates the
//! stream to its own processor and onwards. The 1D variant floods along a
//! [`LinePath`]; the 2D variant floods along the root's row and lets every
//! router of that row additionally feed its column.

use wse_fabric::geometry::{Coord, Direction, DirectionSet, GridDim};
use wse_fabric::router::RouteRule;
use wse_fabric::wavelet::Color;

use crate::path::LinePath;
use crate::plan::CollectivePlan;

/// Append a flooding broadcast from the path's root along the path.
///
/// The root sends `vector_len` elements starting at local offset `offset`;
/// every other PE on the path stores the stream at the same offset.
pub fn append_flood_broadcast(
    plan: &mut CollectivePlan,
    path: &LinePath,
    vector_len: u32,
    offset: u32,
    color: Color,
) {
    let n = path.len();
    if n <= 1 {
        return;
    }
    // Root: stream the vector away from itself.
    plan.program_mut(path.root()).send(color, offset, vector_len);
    plan.push_rule(
        path.root(),
        color,
        RouteRule::counted(
            Direction::Ramp,
            DirectionSet::single(path.away_from_root(0)),
            vector_len as u64,
        ),
    );
    // Every other PE: deliver to the processor and keep flooding outwards.
    for pos in 1..n {
        let at = path.coord(pos);
        let mut forward = DirectionSet::single(Direction::Ramp);
        if pos + 1 < n {
            forward = forward.with(path.away_from_root(pos));
        }
        plan.push_rule(
            at,
            color,
            RouteRule::counted(path.towards_root(pos), forward, vector_len as u64),
        );
        plan.program_mut(at).recv_store(color, offset, vector_len);
    }
}

/// Build a stand-alone 1D broadcast plan along a path.
pub fn flood_broadcast_plan(path: &LinePath, vector_len: u32, color: Color) -> CollectivePlan {
    let mut plan = CollectivePlan::new(
        format!("broadcast-1d-p{}", path.len()),
        path.dim(),
        path.root(),
        vector_len,
    );
    append_flood_broadcast(&mut plan, path, vector_len, 0, color);
    plan.add_data_pe(path.root());
    for c in path.coords() {
        plan.add_result_pe(*c);
    }
    plan
}

/// Append a 2D flooding broadcast from the grid's north-west corner `(0, 0)`
/// (§7.1): the stream floods eastwards along row 0 while every router of
/// row 0 simultaneously feeds its column southwards.
pub fn append_flood_broadcast_2d(
    plan: &mut CollectivePlan,
    dim: GridDim,
    vector_len: u32,
    offset: u32,
    color: Color,
) {
    let root = Coord::new(0, 0);
    if dim.num_pes() <= 1 {
        return;
    }
    let count = vector_len as u64;
    plan.program_mut(root).send(color, offset, vector_len);
    let mut root_forward = DirectionSet::EMPTY;
    if dim.width > 1 {
        root_forward = root_forward.with(Direction::East);
    }
    if dim.height > 1 {
        root_forward = root_forward.with(Direction::South);
    }
    plan.push_rule(root, color, RouteRule::counted(Direction::Ramp, root_forward, count));

    for c in dim.iter() {
        if c == root {
            continue;
        }
        let mut forward = DirectionSet::single(Direction::Ramp);
        let accept_from = if c.y == 0 {
            // Row 0: flood eastwards and feed the column below.
            if c.x + 1 < dim.width {
                forward = forward.with(Direction::East);
            }
            if dim.height > 1 {
                forward = forward.with(Direction::South);
            }
            Direction::West
        } else {
            // Other rows: keep flooding southwards.
            if c.y + 1 < dim.height {
                forward = forward.with(Direction::South);
            }
            Direction::North
        };
        plan.push_rule(c, color, RouteRule::counted(accept_from, forward, count));
        plan.program_mut(c).recv_store(color, offset, vector_len);
    }
}

/// Build a stand-alone 2D broadcast plan over the whole grid.
pub fn flood_broadcast_2d_plan(dim: GridDim, vector_len: u32, color: Color) -> CollectivePlan {
    let mut plan = CollectivePlan::new(
        format!("broadcast-2d-{}x{}", dim.height, dim.width),
        dim,
        Coord::new(0, 0),
        vector_len,
    );
    append_flood_broadcast_2d(&mut plan, dim, vector_len, 0, color);
    plan.add_data_pe(Coord::new(0, 0));
    for c in dim.iter() {
        plan.add_result_pe(c);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_plan, RunConfig};

    #[test]
    fn row_broadcast_reaches_every_pe() {
        let dim = GridDim::row(9);
        let path = LinePath::row(dim, 0);
        let b = 12;
        let plan = flood_broadcast_plan(&path, b, Color::new(2));
        let data: Vec<f32> = (0..b).map(|i| i as f32 * 1.5).collect();
        let outcome = run_plan(&plan, std::slice::from_ref(&data), &RunConfig::default()).unwrap();
        assert_eq!(outcome.outputs.len(), 9);
        for (_, out) in &outcome.outputs {
            assert_eq!(out, &data);
        }
        // Energy equals one message: B wavelets over P-1 links.
        assert_eq!(outcome.report.energy_hops, (b as u64) * 8);
    }

    #[test]
    fn broadcast_runtime_matches_model_shape() {
        // T_Bcast = B + P + 2 T_R (§4.2); the simulator adds a small constant.
        let dim = GridDim::row(32);
        let path = LinePath::row(dim, 0);
        let b = 128;
        let plan = flood_broadcast_plan(&path, b, Color::new(0));
        let data: Vec<f32> = (0..b).map(|i| i as f32).collect();
        let outcome = run_plan(&plan, &[data], &RunConfig::default()).unwrap();
        let measured = outcome.runtime_cycles() as f64;
        let model = (b + 32 + 4) as f64;
        assert!((measured - model).abs() / model < 0.25, "measured {measured}, model {model}");
    }

    #[test]
    fn grid_broadcast_reaches_every_pe() {
        let dim = GridDim::new(5, 4);
        let b = 7;
        let plan = flood_broadcast_2d_plan(dim, b, Color::new(4));
        let data: Vec<f32> = (0..b).map(|i| (i as f32).sin()).collect();
        let outcome = run_plan(&plan, std::slice::from_ref(&data), &RunConfig::default()).unwrap();
        assert_eq!(outcome.outputs.len(), 20);
        for (_, out) in &outcome.outputs {
            assert_eq!(out, &data);
        }
        // Energy: every PE except the root receives the stream over exactly
        // one incoming link, so hops = B · (P - 1).
        assert_eq!(outcome.report.energy_hops, (b as u64) * 19);
    }

    #[test]
    fn grid_broadcast_handles_degenerate_shapes() {
        for (w, h) in [(1u32, 6u32), (6, 1), (1, 1)] {
            let dim = GridDim::new(w, h);
            let b = 3;
            let plan = flood_broadcast_2d_plan(dim, b, Color::new(1));
            let data = vec![2.5f32; b as usize];
            let outcome =
                run_plan(&plan, std::slice::from_ref(&data), &RunConfig::default()).unwrap();
            for (_, out) in &outcome.outputs {
                assert_eq!(out, &data);
            }
        }
    }

    #[test]
    fn broadcast_at_offset_preserves_other_memory() {
        // Used by AllReduce: the reduced vector is broadcast back into the
        // same local offset on every PE.
        let dim = GridDim::row(4);
        let path = LinePath::row(dim, 0);
        let b = 4;
        let mut plan = CollectivePlan::new("offset-bcast", dim, path.root(), b);
        append_flood_broadcast(&mut plan, &path, b, 0, Color::new(3));
        plan.add_data_pe(path.root());
        for c in path.coords() {
            plan.add_result_pe(*c);
        }
        let data = vec![9.0f32, 8.0, 7.0, 6.0];
        let outcome = run_plan(&plan, std::slice::from_ref(&data), &RunConfig::default()).unwrap();
        for (_, out) in &outcome.outputs {
            assert_eq!(out, &data);
        }
    }
}
