//! Running a plan under the paper's measurement methodology (§8.3).
//!
//! On the real machine the PEs have independent clocks and may insert
//! thermal no-ops, so naively timing a collective is impossible. The paper
//! calibrates a wait parameter `α` so that all PEs start at (almost) the
//! same true time, and corrects all local clock readings onto the epoch of a
//! reference broadcast. This module reproduces that procedure end-to-end on
//! the simulator: the collective plan is prefixed with the staggering
//! busy-wait, executed with clock skew and (optionally) thermal noise, and
//! the §8.3 correction is applied to the skewed readings.

use wse_fabric::measure::{self, Calibration, Timestamps};
use wse_fabric::program::PeProgram;
use wse_fabric::{ClockModel, Fabric};

use crate::error::CollectiveError;
use crate::plan::CollectivePlan;
use crate::runner::{check_inputs, RunConfig};

/// Configuration of a calibrated measurement.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Fabric parameters and optional thermal noise.
    pub run: RunConfig,
    /// Per-PE clock skew model.
    pub clock: ClockModel,
    /// Calibration stops once the corrected start spread drops below this
    /// many cycles (the paper achieves < 57 in 1D and < 129 in 2D).
    pub start_spread_threshold: u64,
    /// Maximum number of calibration runs.
    pub max_iterations: usize,
}

impl MeasureConfig {
    /// A measurement configuration with the given clock model and defaults
    /// matching the paper's reported calibration quality.
    pub fn new(clock: ClockModel) -> Self {
        MeasureConfig {
            run: RunConfig::default(),
            clock,
            start_spread_threshold: 57,
            max_iterations: 8,
        }
    }
}

/// The outcome of a calibrated measurement of one plan.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// The calibration result (final `α`, iterations, measured duration).
    pub calibration: Calibration,
}

impl MeasuredRun {
    /// The measured collective runtime in cycles (after start-time
    /// correction), i.e. what the paper's plots report.
    pub fn duration(&self) -> u64 {
        self.calibration.measurement.duration
    }
}

/// Execute `plan` under the §8.3 measurement methodology.
///
/// For every candidate `α` the plan is re-run with a per-PE busy-wait
/// prefix of `α·(M + N − i − j)` writes; the per-PE start (end of the
/// prefix) and end (program completion) times are read through the skewed
/// clock model, corrected, and fed to the calibration loop. Each
/// calibration run draws a fresh thermal-noise realization (derived from
/// the configured base seed and the run number), exactly as repeated runs
/// on the real machine would — replaying one fixed no-op sequence would
/// bias the calibration towards that single draw.
///
/// A clock model covering a different number of PEs than the plan's grid
/// and ill-shaped inputs are reported as typed errors
/// ([`CollectiveError::ClockModelMismatch`],
/// [`CollectiveError::InputCountMismatch`], ...), not panics.
pub fn measured_run(
    plan: &CollectivePlan,
    inputs: &[Vec<f32>],
    config: &MeasureConfig,
) -> Result<MeasuredRun, CollectiveError> {
    if config.clock.num_pes() != plan.dim().num_pes() {
        return Err(CollectiveError::ClockModelMismatch {
            clock_pes: config.clock.num_pes(),
            plan_pes: plan.dim().num_pes(),
        });
    }
    check_inputs(plan, inputs)?;
    let dim = plan.dim();
    let mut first_error = None;
    let mut run_index = 0u64;
    let calibration =
        measure::calibrate(dim, config.start_spread_threshold, config.max_iterations, |alpha| {
            let this_run = run_index;
            run_index += 1;
            match run_staggered(plan, inputs, config, alpha, this_run) {
                Ok(ts) => ts,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                    // Return degenerate (zero) readings; the caller bails out
                    // below on the recorded error.
                    let n = dim.num_pes();
                    Timestamps { reference: vec![0; n], start: vec![0; n], end: vec![0; n] }
                }
            }
        });
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(MeasuredRun { calibration })
}

fn run_staggered(
    plan: &CollectivePlan,
    inputs: &[Vec<f32>],
    config: &MeasureConfig,
    alpha: f64,
    run_index: u64,
) -> Result<Timestamps, CollectiveError> {
    let dim = plan.dim();
    let mut fabric = Fabric::new(dim, config.run.params);
    fabric.set_noise(config.run.noise.as_ref().map(|noise| noise.for_run(run_index)));
    // Install the plan with a staggering prefix on every PE.
    for c in dim.iter() {
        let writes = measure::stagger_writes(dim, c, alpha).max(1) as u32;
        let mut program = PeProgram::new();
        program.compute(writes);
        for instruction in plan.program(c).instructions() {
            program.push(*instruction);
        }
        fabric.set_program(c, &program);
        for (color, script) in plan.scripts(c) {
            fabric.set_router_script(c, *color, script.clone());
        }
    }
    for (at, data) in plan.data_pes().iter().zip(inputs) {
        fabric.set_local(*at, data);
    }
    let report = fabric.run()?;

    // True times: reference-broadcast arrival (analytic, as in §8.3), end of
    // the staggering prefix, and program completion.
    let mut reference = Vec::with_capacity(dim.num_pes());
    let mut start = Vec::with_capacity(dim.num_pes());
    let mut end = Vec::with_capacity(dim.num_pes());
    for (idx, c) in dim.iter().enumerate() {
        reference.push(measure::reference_delay(c));
        let prefix_end =
            fabric.instruction_finish(c).first().copied().unwrap_or(report.pe_finish[idx]);
        start.push(prefix_end);
        end.push(report.pe_finish[idx]);
    }
    Ok(Timestamps::from_true_times(&config.clock, &reference, &start, &end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{reduce_1d_plan, ReducePattern};
    use crate::runner::{run_plan, RunConfig};
    use wse_fabric::program::ReduceOp;
    use wse_fabric::NoiseModel;
    use wse_model::Machine;

    fn inputs(p: usize, b: usize) -> Vec<Vec<f32>> {
        (0..p).map(|i| vec![i as f32 + 1.0; b]).collect()
    }

    #[test]
    fn calibrated_measurement_tracks_plain_runtime() {
        let p = 16u32;
        let b = 64u32;
        let plan = reduce_1d_plan(ReducePattern::TwoPhase, p, b, ReduceOp::Sum, &Machine::wse2());
        let data = inputs(p as usize, b as usize);
        let plain = run_plan(&plan, &data, &RunConfig::default()).unwrap().runtime_cycles();

        let clock = ClockModel::random(plan.dim().num_pes(), 100_000, 9);
        let config = MeasureConfig::new(clock);
        let measured = measured_run(&plan, &data, &config).unwrap();
        let duration = measured.duration();
        // The calibrated measurement sees the same collective; the staggered
        // start adds at most a small spread.
        let diff = (duration as i64 - plain as i64).abs() as f64;
        assert!(diff <= plain as f64 * 0.15 + 32.0, "measured {duration} vs plain {plain}");
        assert!(measured.calibration.measurement.start_spread <= 57);
    }

    #[test]
    fn mismatched_clock_model_is_a_typed_error() {
        // Regression: this used to be an `assert_eq!` panic inside
        // `measured_run`, unreachable to callers that wanted to handle it.
        let plan = reduce_1d_plan(ReducePattern::Chain, 8, 16, ReduceOp::Sum, &Machine::wse2());
        let data = inputs(8, 16);
        let config = MeasureConfig::new(ClockModel::synchronized(4));
        let err = measured_run(&plan, &data, &config).unwrap_err();
        assert_eq!(err, CollectiveError::ClockModelMismatch { clock_pes: 4, plan_pes: 8 });
    }

    #[test]
    fn ill_shaped_inputs_are_typed_errors() {
        let plan = reduce_1d_plan(ReducePattern::Chain, 8, 16, ReduceOp::Sum, &Machine::wse2());
        let config = MeasureConfig::new(ClockModel::synchronized(8));
        let err = measured_run(&plan, &inputs(7, 16), &config).unwrap_err();
        assert!(matches!(err, CollectiveError::InputCountMismatch { expected: 8, got: 7 }));
        let err = measured_run(&plan, &inputs(8, 15), &config).unwrap_err();
        assert!(matches!(err, CollectiveError::InputLengthMismatch { expected: 16, got: 15, .. }));
    }

    #[test]
    fn noisy_measurements_are_reproducible_per_seed() {
        // Every calibration iteration draws a fresh noise realization
        // (seed ⊕ run number), but the whole measurement remains a pure
        // function of its configuration.
        let p = 8u32;
        let plan = reduce_1d_plan(ReducePattern::Chain, p, 32, ReduceOp::Sum, &Machine::wse2());
        let data = inputs(p as usize, 32);
        let measure = || {
            let clock = ClockModel::random(plan.dim().num_pes(), 5_000, 2);
            let mut config = MeasureConfig::new(clock);
            config.run.noise = Some(NoiseModel::new(0.1, 5));
            config.start_spread_threshold = 0; // force every iteration to run
            config.max_iterations = 4;
            measured_run(&plan, &data, &config).unwrap().calibration
        };
        let a = measure();
        let b = measure();
        assert_eq!(a.iterations, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn calibration_copes_with_thermal_noise() {
        let p = 12u32;
        let b = 32u32;
        let plan = reduce_1d_plan(ReducePattern::Chain, p, b, ReduceOp::Sum, &Machine::wse2());
        let data = inputs(p as usize, b as usize);
        let plain = run_plan(&plan, &data, &RunConfig::default()).unwrap().runtime_cycles();

        let clock = ClockModel::random(plan.dim().num_pes(), 10_000, 4);
        let mut config = MeasureConfig::new(clock);
        config.run.noise = Some(NoiseModel::new(0.05, 7));
        config.start_spread_threshold = 16;
        let measured = measured_run(&plan, &data, &config).unwrap();
        // Thermal no-ops slow the run down slightly; the measurement must
        // stay in the right ballpark and must not under-report.
        let duration = measured.duration();
        assert!(duration as f64 >= plain as f64 * 0.9);
        assert!(
            duration as f64 <= plain as f64 * 1.5 + 64.0,
            "duration {duration} vs plain {plain}"
        );
    }
}
