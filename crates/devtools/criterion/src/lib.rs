//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the Criterion benchmark
//! harnesses run against this minimal implementation instead. It keeps the
//! same API shape (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`, `black_box`) but replaces Criterion's
//! statistical machinery with a simple warm-up plus timed-sample loop that
//! reports the mean wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, running one warm-up iteration plus `samples` measured
    /// iterations, and record the mean duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn report(name: &str, mean: Option<Duration>) {
    match mean {
        Some(mean) => println!("{name:<60} time: [{mean:>12.3?}/iter]"),
        None => println!("{name:<60} (no measurement recorded)"),
    }
}

fn run_one(name: &str, samples: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { samples, mean: None };
    f(&mut bencher);
    report(name, bencher.mean);
}

impl Criterion {
    /// Run a stand-alone benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1) as u64;
        self
    }

    /// Run one benchmark of the group against an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Run one benchmark of the group without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, |b| f(b));
        self
    }

    /// Finish the group (cosmetic in this implementation).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes harness flags to `harness = false` targets
            // when asked to run benches; a plain smoke invocation must not
            // loop over the full measurement set in that case.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_benchmarks_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(21u64), &21u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert!(total >= 21);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("Star").to_string(), "Star");
    }
}
