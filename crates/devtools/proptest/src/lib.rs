//! Offline stand-in for the `proptest` crate.
//!
//! This workspace must build without network access, so the property-based
//! tests run against this small vendored harness instead of the real
//! `proptest`. It implements the subset of the API the tests use — range and
//! collection strategies, `proptest!`, `prop_assert!`, `prop_assume!` and
//! `prop_oneof!` — with deterministic pseudo-random sampling. There is no
//! shrinking: a failing case reports the failed assertion directly, and the
//! deterministic seeding (derived from the test name and case index) makes
//! every failure reproducible by simply re-running the test.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of (non-rejected) cases to run per property.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before the test aborts,
        /// expressed as a multiple of `cases`.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_global_rejects: 32 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assumption (`prop_assume!`) did not hold; the case is skipped.
        Reject(String),
        /// An assertion (`prop_assert!`) failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// A rejected (skipped) case.
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }

    /// Deterministic splitmix64 generator used to sample strategy values.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed a generator from a test identifier and the case index.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for byte in test_name.bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random test inputs.
    pub trait Strategy {
        /// The type of value the strategy produces.
        type Value;
        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// A strategy that always produces the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Box a strategy (used by `prop_oneof!` to unify branch types).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between several strategies of the same value type.
    pub struct Union<T> {
        branches: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union from its branches (at least one).
        pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.branches.len() as u64) as usize;
            self.branches[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with random length and random elements.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector strategy: lengths drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The macros and types tests conventionally glob-import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Skip the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a test that runs `body` for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$attr:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut passed = 0u32;
                let mut attempt = 0u64;
                while passed < config.cases {
                    attempt += 1;
                    assert!(
                        attempt <= config.cases as u64 * config.max_global_rejects as u64 + 1024,
                        "{test_name}: too many rejected cases ({passed} passed of {} wanted)",
                        config.cases
                    );
                    let mut rng = $crate::test_runner::TestRng::for_case(test_name, attempt);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!("{test_name}: case {attempt} failed: {message}");
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..3.5).sample(&mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..5, 1..9).sample(&mut rng);
            assert!((1..9).contains(&v.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let sample = |case| {
            let mut rng = TestRng::for_case("det", case);
            (0u64..1000).sample(&mut rng)
        };
        assert_eq!(sample(7), sample(7));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_runnable_tests(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != 3);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn oneof_and_just_work(v in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }
}
