//! Batch serving: execute a mixed batch of independent collective requests
//! in parallel on an `Executor`.
//!
//! Demonstrates the concurrent counterpart of the `Session` workflow:
//!
//! 1. bundle requests with their inputs as `BatchItem`s — mixed kinds,
//!    topologies and vector lengths, as a serving front-end would see them,
//! 2. hand the batch to an `Executor`: worker threads resolve plans through
//!    a shared lock-guarded cache and check resettable fabrics out of a
//!    per-shape pool,
//! 3. observe that results are byte-identical to running the same batch
//!    sequentially on a fresh `Session` — parallelism never changes results
//!    (noise-run indices are assigned by batch position, not by thread
//!    timing),
//! 4. read the amortisation counters: plans generated once, fabrics
//!    allocated once per shape in flight.
//!
//! Run with `cargo run --release -p wse-examples --bin batch_serving`.

use std::time::Instant;

use wse_collectives::prelude::*;
use wse_examples::sample_vector;

fn main() {
    // 1. A mixed batch of 24 independent requests.
    let mut batch = Vec::new();
    for i in 0..24u32 {
        let b = 128 + (i % 3) * 64;
        let request = match i % 3 {
            0 => CollectiveRequest::reduce(Topology::line(32), b),
            1 => CollectiveRequest::allreduce(Topology::line(24), b),
            _ => CollectiveRequest::reduce(Topology::grid(6, 6), b),
        };
        let inputs: Vec<Vec<f32>> = (0..request.topology.num_pes())
            .map(|pe| sample_vector(pe + i as usize, b as usize))
            .collect();
        batch.push(BatchItem::new(request, inputs));
    }
    println!("# Batch serving: {} mixed requests\n", batch.len());

    // 2. Parallel execution.
    let executor = Executor::new();
    let start = Instant::now();
    let parallel = executor.run_batch(&batch);
    let parallel_time = start.elapsed();

    // 3. The sequential reference: byte-identical, request for request.
    let mut session = Session::new();
    let start = Instant::now();
    let sequential = session.run_batch(&batch);
    let sequential_time = start.elapsed();
    for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        let (p, s) = (p.as_ref().expect("parallel run"), s.as_ref().expect("sequential run"));
        assert_eq!(p.report, s.report, "item {i} diverged");
        assert_eq!(p.outputs, s.outputs, "item {i} diverged");
    }
    println!("executor == session, byte for byte, across the whole batch");
    println!(
        "sequential {:.2} ms, parallel {:.2} ms on {} core(s)\n",
        sequential_time.as_secs_f64() * 1e3,
        parallel_time.as_secs_f64() * 1e3,
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
    );

    // 4. Amortisation: few plans and fabrics served many runs.
    let stats = executor.stats();
    println!("runs:            {}", stats.runs);
    println!("plan cache:      {} hits / {} misses", stats.plan_hits, stats.plan_misses);
    println!("fabric pool:     {} reuses / {} created", stats.fabric_reuses, stats.fabrics_created);
    println!("pooled fabrics:  {}", executor.pooled_fabrics());
}
