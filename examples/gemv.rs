//! Distributed GEMV: the motivating workload of the paper's 1D collectives.
//!
//! A matrix `A` of size `m × n` is distributed column-block-wise over a row
//! of `P` PEs (as in the paper's §3: "operating on a part of a row or column
//! of the device ... is important in its own right for applications such as
//! GEMV"). Every PE computes its partial product `y_p = A[:, cols_p] ·
//! x[cols_p]` locally; the partial results are then combined with a wafer
//! AllReduce so every PE ends up with the full `y = A·x`.
//!
//! The example compares the vendor-style Chain+Broadcast against the
//! model-selected algorithm and the Auto-Gen schedule.
//!
//! Run with `cargo run --release -p wse-examples --bin gemv`.

use wse_collectives::prelude::*;
use wse_examples::{print_run_summary, sample_value, sample_vector};

fn main() {
    let mut session = Session::new();
    let p: u32 = 32; // PEs in the row
    let m: usize = 256; // rows of A  (= length of the reduced vector, 1 KB)
    let n: usize = 512; // columns of A, split over the PEs

    println!("# Distributed GEMV: y = A x with A of size {m}x{n} over {p} PEs\n");

    // Build A (column blocks per PE) and x.
    let cols_per_pe = n / p as usize;
    let x: Vec<f32> = sample_vector(9999, n);
    let mut partials: Vec<Vec<f32>> = Vec::new();
    let mut reference = vec![0.0f32; m];
    for pe in 0..p as usize {
        let mut partial = vec![0.0f32; m];
        for local_col in 0..cols_per_pe {
            let col = pe * cols_per_pe + local_col;
            for (row, value) in partial.iter_mut().enumerate() {
                let a = sample_value(row * n + col);
                *value += a * x[col];
            }
        }
        for row in 0..m {
            reference[row] += partial[row];
        }
        partials.push(partial);
    }

    // The local compute is done; the communication step is an AllReduce of
    // the partial y vectors. Compare three ways of doing it — the session
    // caches each candidate's plan, which is what an iterative solver doing
    // this AllReduce every step would want.
    let b = m as u32;
    let candidates = [
        ("vendor Chain+Bcast", AllReducePattern::ReduceBroadcast(ReducePattern::Chain)),
        ("Two-Phase+Bcast", AllReducePattern::ReduceBroadcast(ReducePattern::TwoPhase)),
        ("Auto-Gen+Bcast", AllReducePattern::ReduceBroadcast(ReducePattern::AutoGen)),
    ];
    let mut vendor_cycles = None;
    for (label, pattern) in candidates {
        let request = CollectiveRequest::allreduce(Topology::line(p), b)
            .with_schedule(Schedule::AllReduce1d(pattern));
        let resolved = session.plan(&request).expect("request resolves");
        let outcome = session.run(&request, &partials).expect("plan runs");
        assert_outputs_close(&outcome, &reference, 1e-3);
        let cycles = outcome.runtime_cycles();
        if vendor_cycles.is_none() {
            vendor_cycles = Some(cycles);
        }
        print_run_summary(&format!("y = A x AllReduce / {label}"), &resolved.plan, cycles);
        if let Some(vendor) = vendor_cycles {
            if vendor != cycles {
                println!(
                    "{:<40} {:>9.2}x speedup over the vendor chain",
                    "",
                    vendor as f64 / cycles as f64
                );
            }
        }
    }

    // What does the model recommend for this shape?
    let auto = CollectiveRequest::allreduce(Topology::line(p), b);
    let resolved = session.plan(&auto).expect("auto request resolves");
    println!(
        "\nmodel recommendation for P={p}, B={} bytes: {} (predicted {:.0} cycles)",
        b * 4,
        resolved.algorithm,
        resolved.predicted_cycles().unwrap_or_default()
    );
    println!("GEMV result verified against the serial reference on every PE.");
}
