//! Auto-Gen code generation: from a problem size to per-PE CSL-like source.
//!
//! The paper's Auto-Gen Reduce computes an optimal pre-order reduction tree
//! for the given `(P, B)` and generates per-PE code and routing
//! configurations from it (§5.5). This example shows the whole pipeline for
//! a row of 16 PEs at two very different vector lengths — a scalar, where a
//! shallow tree wins, and a long vector, where the schedule degenerates to
//! the pipelined chain — and dumps the generated sources.
//!
//! Run with `cargo run --release -p wse-examples --bin codegen_dump`.

use wse_codegen::emit_plan;
use wse_collectives::prelude::*;
use wse_collectives::reduce::tree_reduce_plan;
use wse_model::AutogenSolver;

fn describe_tree(tree: &wse_model::ReductionTree) -> String {
    let parents: Vec<String> = tree
        .parent
        .iter()
        .map(|p| p.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string()))
        .collect();
    format!(
        "height {}, max in-degree {}, energy {} hops, parents [{}]",
        tree.height(),
        tree.max_in_degree(),
        tree.scalar_energy(),
        parents.join(", ")
    )
}

fn main() {
    let machine = Machine::wse2();
    let p: usize = 16;
    let solver = AutogenSolver::new(p as u64);

    for (label, b) in [("scalar (4 bytes)", 1u32), ("long vector (16 KB)", 4096u32)] {
        println!("# Auto-Gen schedule for {p} PEs, {label}\n");
        let cost = solver.best_cost(b as u64, &machine);
        let tree = solver.best_tree(b as u64, &machine);
        println!("chosen schedule: {:?} (predicted {:.0} cycles)", cost.kind, cost.cycles);
        println!("tree: {}\n", describe_tree(&tree));

        let path = LinePath::row(GridDim::row(p as u32), 0);
        let plan = tree_reduce_plan(format!("autogen-p{p}-b{b}"), &path, &tree, b, ReduceOp::Sum);
        let generated = emit_plan(&plan);
        println!(
            "generated {} PE modules, {} total source lines\n",
            generated.pe_sources.len(),
            generated.total_lines()
        );
        println!("--- layout.csl ---------------------------------------------");
        println!("{}", generated.layout);
        for coord in [Coord::new(0, 0), Coord::new((p / 2) as u32, 0)] {
            if let Some(src) = generated.source_of(coord) {
                println!(
                    "--- pe_{}_{}.csl -------------------------------------------",
                    coord.x, coord.y
                );
                println!("{src}");
            }
        }
        println!();
    }
    println!("(The emitted text mirrors what the paper's Python generator produces;");
    println!(" the executable form of the same schedule runs on the wse-fabric simulator.)");
}
