//! Shared helpers for the runnable examples.
//!
//! The examples are small, self-contained programs that exercise the public
//! API of the collectives library on scenarios from the paper's motivation:
//! a quickstart, a distributed GEMV, a stencil solver's per-iteration
//! AllReduce, model-driven autotuning, code generation, parallel batch
//! execution (`batch_serving`), the asynchronous serving front-end
//! (`serving_loop`: submission queue, deadline/size batching, completion
//! handles), and multi-tenant admission control (`multi_tenant`: per-tenant
//! cycle budgets, deferral, the predicted-cycle ceiling).

use wse_collectives::prelude::*;

/// Print a one-line summary of a simulated collective run.
pub fn print_run_summary(label: &str, plan: &CollectivePlan, cycles: u64) {
    let machine = Machine::wse2();
    println!(
        "{label:<40} {:>10} cycles  ({:>8.3} us at 850 MHz, {} colors)",
        cycles,
        machine.cycles_to_us(cycles as f64),
        plan.colors_used().len()
    );
}

/// Deterministic pseudo-random data in `[-1, 1)` (keeps the examples free of
/// an RNG dependency while still exercising non-trivial values).
pub fn sample_value(seed: usize) -> f32 {
    let x = (seed as u64).wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((x >> 33) as f32 / (1u64 << 31) as f32) - 1.0
}

/// A vector of deterministic sample values.
pub fn sample_vector(seed: usize, len: usize) -> Vec<f32> {
    (0..len).map(|i| sample_value(seed * 1_000_003 + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_values_are_deterministic_and_bounded() {
        for i in 0..100 {
            let v = sample_value(i);
            assert!((-1.0..1.0).contains(&v));
            assert_eq!(v, sample_value(i));
        }
        assert_eq!(sample_vector(3, 16), sample_vector(3, 16));
    }
}
