//! Model-driven autotuning: which collective should an application use?
//!
//! HPC applications need Reduce/AllReduce across a wide range of vector
//! lengths and PE counts (§1.1). This example prints the model's choice of
//! the best fixed algorithm for a grid of problem shapes — a miniature
//! version of the paper's Figure 8 — and then validates one interesting
//! column on the cycle-level simulator, showing that the model ranks the
//! algorithms correctly even when its absolute predictions are off by a few
//! percent.
//!
//! Run with `cargo run --release -p wse-examples --bin autotune_heatmap`.

use wse_collectives::prelude::*;
use wse_examples::sample_vector;
use wse_model::selection;

fn main() {
    let machine = Machine::wse2();
    let pe_counts: Vec<u64> = vec![4, 8, 16, 32, 64, 128, 256, 512];
    let vector_bytes: Vec<u64> = vec![4, 16, 64, 256, 1024, 4096, 16384];

    println!("# Best fixed 1D AllReduce per (PE count, vector length), per the model\n");
    print!("{:>8}", "PEs\\B");
    for b in &vector_bytes {
        print!("{:>18}", wse_model::sweep::format_bytes(*b));
    }
    println!();
    for &p in &pe_counts {
        print!("{:>8}", format!("{p}x1"));
        for &bytes in &vector_bytes {
            let b = wse_model::sweep::bytes_to_wavelets(bytes);
            let best = selection::best_fixed_allreduce_1d(p, b, &machine);
            print!("{:>18}", best.algorithm.name());
        }
        println!();
    }

    // Validate the ranking on the simulator for one column: P = 32 PEs. A
    // session keeps one 32-PE fabric alive across all five candidates.
    let mut session = Session::new();
    let p: u32 = 32;
    let bytes = 1024u64;
    let b = wse_model::sweep::bytes_to_wavelets(bytes) as u32;
    println!("\n# Simulator validation at {p} PEs, {bytes} bytes\n");
    let inputs: Vec<Vec<f32>> = (0..p as usize).map(|i| sample_vector(i, b as usize)).collect();
    let expected = expected_reduce(&inputs, ReduceOp::Sum);
    let mut results: Vec<(String, u64, f64)> = Vec::new();
    for pattern in ReducePattern::all() {
        let request = CollectiveRequest::allreduce(Topology::line(p), b)
            .with_schedule(Schedule::AllReduce1d(AllReducePattern::ReduceBroadcast(pattern)));
        let outcome = session.run(&request, &inputs).expect("plan runs");
        assert_outputs_close(&outcome, &expected, 1e-3);
        let predicted = wse_model::costs_1d::reduce_then_broadcast(
            pattern.model_algorithm().cycles(p as u64, b as u64, &machine, None),
            p as u64,
            b as u64,
            &machine,
        );
        results.push((format!("{}+Bcast", pattern.name()), outcome.runtime_cycles(), predicted));
    }
    println!("{:<20} {:>12} {:>12} {:>10}", "algorithm", "measured", "predicted", "error");
    for (name, measured, predicted) in &results {
        let err = (predicted - *measured as f64).abs() / *measured as f64 * 100.0;
        println!("{name:<20} {measured:>12} {predicted:>12.0} {err:>9.1}%");
    }
    let best_measured = results.iter().min_by_key(|(_, m, _)| *m).unwrap();
    let best_predicted = results.iter().min_by(|a, b| a.2.partial_cmp(&b.2).unwrap()).unwrap();
    println!(
        "\nfastest measured: {} — fastest predicted: {}{}",
        best_measured.0,
        best_predicted.0,
        if best_measured.0 == best_predicted.0 { " (the model picked the winner)" } else { "" }
    );
}
