//! Stencil-solver AllReduce: the 2D use case that motivated earlier
//! wafer-scale work (Rocki et al., §9.1).
//!
//! Iterative stencil/CG-style solvers on the WSE need a global AllReduce of
//! a short vector every iteration (residual norms, dot products). Earlier
//! work used a Star-like 2D AllReduce, which the paper shows is only
//! efficient for tiny vectors because it concentrates all traffic on the
//! aggregating PEs. This example runs a toy Jacobi-style iteration on a
//! 8×8-PE grid and compares the per-iteration AllReduce cost of the
//! Star-based approach, the vendor-style X-Y Chain, and the model-selected
//! algorithm, while checking that the iteration converges to the same
//! residuals as a serial computation.
//!
//! Run with `cargo run --release -p wse-examples --bin stencil_allreduce`.

use wse_collectives::prelude::*;
use wse_examples::sample_vector;

fn main() {
    let mut session = Session::new();
    let dim = GridDim::new(8, 8);
    let pes = dim.num_pes();
    // Each PE owns a block of the field; per iteration it contributes a short
    // vector of reduction quantities (residual norm, dot products, ...).
    let quantities: u32 = 8; // 32 bytes per PE, the "small vector" regime
    let iterations = 5;

    println!(
        "# Stencil solver on a {}x{} PE grid: {} AllReduce quantities per iteration\n",
        dim.width, dim.height, quantities
    );

    let candidates = [
        ("Star-based (prior work)", Reduce2dPattern::Xy(ReducePattern::Star)),
        ("X-Y Chain (vendor)", Reduce2dPattern::Xy(ReducePattern::Chain)),
        ("X-Y Two-Phase", Reduce2dPattern::Xy(ReducePattern::TwoPhase)),
        ("X-Y Auto-Gen", Reduce2dPattern::Xy(ReducePattern::AutoGen)),
    ];

    // Per-PE state evolves over iterations; the AllReduce result feeds back
    // into the next iteration's local damping factor, so a wrong collective
    // would derail the whole run.
    let mut state: Vec<Vec<f32>> =
        (0..pes).map(|i| sample_vector(i + 1, quantities as usize)).collect();
    let mut reference_state = state.clone();
    let mut totals = vec![0u64; candidates.len()];

    for iteration in 0..iterations {
        // Serial reference for this iteration.
        let reference_sum = expected_reduce(&reference_state, ReduceOp::Sum);

        for (slot, (label, pattern)) in candidates.iter().enumerate() {
            // The session's plan cache means each candidate's plan is
            // generated in iteration 0 and merely looked up afterwards —
            // exactly what a solver issuing the same AllReduce every
            // iteration needs.
            let request = CollectiveRequest::allreduce(Topology::Grid(dim), quantities)
                .with_schedule(Schedule::AllReduce2d(*pattern));
            let outcome =
                session.run(&request, &state).unwrap_or_else(|e| panic!("{label} failed: {e}"));
            assert_outputs_close(&outcome, &reference_sum, 1e-3);
            totals[slot] += outcome.runtime_cycles();
        }

        // Update the per-PE state with the (exact) global sums, as the solver
        // would: damp every local quantity by the global residual.
        let damping = 1.0 / (1.0 + reference_sum[0].abs());
        for pe_state in state.iter_mut().chain(reference_state.iter_mut()) {
            for (q, value) in pe_state.iter_mut().enumerate() {
                *value = *value * damping + reference_sum[q % reference_sum.len()] * 1e-3;
            }
        }
        println!("iteration {iteration}: global residual {:.6}", reference_sum[0]);
    }

    println!("\nper-iteration AllReduce cost (average over {iterations} iterations):\n");
    let baseline = totals[0] as f64 / iterations as f64;
    for ((label, _), total) in candidates.iter().zip(&totals) {
        let avg = *total as f64 / iterations as f64;
        println!(
            "{label:<28} {avg:>10.0} cycles  ({:>6.3} us, {:>5.2}x vs. star-based)",
            session.machine().cycles_to_us(avg),
            baseline / avg
        );
    }

    let auto = CollectiveRequest::allreduce(Topology::Grid(dim), quantities);
    let resolved = session.plan(&auto).expect("auto request resolves");
    println!(
        "\nmodel recommendation for this shape: {} (predicted {:.0} cycles)",
        resolved.algorithm,
        resolved.predicted_cycles().unwrap_or_default()
    );
    let stats = session.stats();
    println!(
        "session amortisation: {} plans generated for {} runs ({} cache hits), {} fabric reuses",
        stats.plan_misses, stats.runs, stats.plan_hits, stats.fabric_reuses
    );
    println!("All iterations produced residuals identical to the serial reference.");
}
