//! Serving loop: submit a continuous stream of mixed-size collective
//! requests to a `CollectiveService` and read the answers back through
//! completion handles.
//!
//! Demonstrates the asynchronous front-end on top of the batch executor:
//!
//! 1. stand up a `CollectiveService` — a bounded submission queue feeding a
//!    batcher thread that cuts batches by **size** (a full `max_batch`) or
//!    **deadline** (`max_wait` after the oldest queued request arrived),
//! 2. submit mixed traffic the way a serving workload produces it: bursts
//!    of small latency-sensitive reductions interleaved with large
//!    throughput-bound grid collectives, each submission returning a
//!    `ResponseHandle` immediately,
//! 3. wait on the handles, verify every answer against the analytically
//!    expected reduction, and read the per-request enqueue-to-complete
//!    latency the service measured,
//! 4. print the `ServiceStats`: batches formed by each trigger, the
//!    batch-size histogram, and the p50/p99 latency summary.
//!
//! Run with `cargo run --release -p wse-examples --bin serving_loop`
//! (add `--quick` for the CI smoke configuration).

use std::time::Duration;

use wse_collectives::prelude::*;
use wse_examples::sample_vector;

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (bursts, burst_len) = if quick { (4, 6) } else { (12, 8) };

    // 1. The service: a 64-deep queue, batches of up to 8 requests, and a
    //    200 us batch window so a lone request is never held long.
    let service = CollectiveService::with_config(ServiceConfig {
        queue_capacity: 64,
        max_batch: 8,
        max_wait: Duration::from_micros(200),
        ..ServiceConfig::default()
    });
    println!("# Serving loop: {} bursts of {} mixed-size requests\n", bursts, burst_len);

    // 2. Mixed-size traffic: every burst carries small line reductions, a
    //    medium AllReduce and one large grid Reduce.
    let mut submitted = Vec::new();
    for burst in 0..bursts {
        for slot in 0..burst_len {
            let (request, sources) = match slot % 4 {
                0 | 1 => (CollectiveRequest::reduce(Topology::line(8), 32), 8),
                2 => (CollectiveRequest::allreduce(Topology::line(16), 128), 16),
                _ => (CollectiveRequest::reduce(Topology::grid(6, 6), 256), 36),
            };
            let inputs: Vec<Vec<f32>> = (0..sources)
                .map(|pe| sample_vector(pe + burst * 1000 + slot, request.vector_len as usize))
                .collect();
            let handle = service
                .submit(request, inputs.clone())
                .expect("the service accepts requests until shutdown");
            submitted.push((request, inputs, handle));
        }
        // A gap between bursts lets the deadline trigger flush partial
        // batches; inside a burst the size trigger cuts full ones.
        std::thread::sleep(Duration::from_micros(500));
    }

    // 3. Collect and verify every response.
    let mut verified = 0usize;
    let mut worst_latency = Duration::ZERO;
    for (request, inputs, handle) in submitted {
        let response = handle.wait();
        let outcome = response.result.expect("all submitted requests are valid");
        let expected = expected_reduce(&inputs, request.op);
        match request.kind {
            CollectiveKind::Reduce | CollectiveKind::AllReduce => {
                assert_outputs_close(&outcome, &expected, 1e-4);
            }
            _ => {}
        }
        verified += 1;
        worst_latency = worst_latency.max(response.latency);
    }
    println!("verified {verified} responses against the analytic reduction");
    println!("worst enqueue-to-complete latency: {:.3} ms\n", worst_latency.as_secs_f64() * 1e3);

    // 4. The service's own accounting.
    let stats = service.shutdown();
    println!("submitted:        {}", stats.submitted);
    println!("completed:        {}", stats.completed);
    println!(
        "batches:          {} ({} by size, {} by deadline, {} at shutdown)",
        stats.batches, stats.size_flushes, stats.deadline_flushes, stats.shutdown_flushes
    );
    println!("mean batch size:  {:.2}", stats.mean_batch_size());
    print!("size histogram:   ");
    for (size, count) in stats.batch_size_histogram.iter().enumerate() {
        if *count > 0 {
            print!("{}x{} ", count, size + 1);
        }
    }
    println!();
    println!(
        "latency:          p50 {:>8.3} ms   p99 {:>8.3} ms   mean {:>8.3} ms   max {:>8.3} ms",
        stats.latency.p50.as_secs_f64() * 1e3,
        stats.latency.p99.as_secs_f64() * 1e3,
        stats.latency.mean.as_secs_f64() * 1e3,
        stats.latency.max.as_secs_f64() * 1e3,
    );
}
