//! Quickstart: reduce and all-reduce a 1 KB vector over a row of PEs.
//!
//! Demonstrates the basic workflow of the library:
//!
//! 1. describe the collective as a `CollectiveRequest` (explicit pattern or
//!    model-driven `Schedule::Auto`),
//! 2. let a `Session` resolve it — plan generation goes through the session's
//!    plan cache, so repeated requests are served without regenerating code,
//! 3. run it on the cycle-level fabric simulator (the session reuses one
//!    resettable fabric instead of allocating a mesh per run),
//! 4. compare the measured cycles with the model prediction.
//!
//! Run with `cargo run --release -p wse-examples --bin quickstart`.

use wse_collectives::prelude::*;
use wse_examples::{print_run_summary, sample_vector};

fn main() {
    let p: u32 = 64; // PEs in the row
    let b: u32 = 256; // 1 KB of f32 values per PE
    let mut session = Session::new();

    println!("# Wafer-scale Reduce quickstart: {p} PEs, {} bytes per PE\n", b * 4);

    let inputs: Vec<Vec<f32>> = (0..p as usize).map(|i| sample_vector(i, b as usize)).collect();
    let expected = expected_reduce(&inputs, ReduceOp::Sum);

    // 1. Every fixed pattern of the paper, plus the Auto-Gen schedule.
    for pattern in ReducePattern::all() {
        let request = CollectiveRequest::reduce(Topology::line(p), b)
            .with_schedule(Schedule::Reduce1d(pattern));
        let resolved = session.plan(&request).expect("request resolves");
        let outcome = session.run(&request, &inputs).expect("plan runs");
        assert_outputs_close(&outcome, &expected, 1e-4);
        let predicted =
            pattern.model_algorithm().cycles(p as u64, b as u64, session.machine(), None);
        print_run_summary(
            &format!("Reduce / {}", pattern.name()),
            &resolved.plan,
            outcome.runtime_cycles(),
        );
        println!("{:<40} {predicted:>10.0} cycles (model prediction)", "");
    }

    // 2. Model-driven selection: the same request with `Schedule::Auto` (the
    //    default) lets the model pick the fixed algorithm.
    let auto_reduce = CollectiveRequest::reduce(Topology::line(p), b);
    let resolved = session.plan(&auto_reduce).expect("auto request resolves");
    println!("\nmodel-selected fixed algorithm: {}", resolved.algorithm);

    // 3. AllReduce with model-driven selection, run repeatedly: the second
    //    and third runs are answered from the plan cache.
    let allreduce = CollectiveRequest::allreduce(Topology::line(p), b);
    for _ in 0..3 {
        let outcome = session.run(&allreduce, &inputs).expect("plan runs");
        assert_outputs_close(&outcome, &expected, 1e-4);
    }
    let resolved = session.plan(&allreduce).expect("cached");
    let outcome = session.run(&allreduce, &inputs).expect("plan runs");
    print_run_summary(
        &format!("AllReduce / {}", resolved.algorithm),
        &resolved.plan,
        outcome.runtime_cycles(),
    );

    let stats = session.stats();
    println!(
        "\nsession: {} plans generated, {} cache hits, {} runs on {} fabrics",
        stats.plan_misses, stats.plan_hits, stats.runs, stats.fabrics_created
    );
    println!("All results verified against a serial reference reduction.");
}
