//! Quickstart: reduce and all-reduce a 1 KB vector over a row of PEs.
//!
//! Demonstrates the basic workflow of the library:
//!
//! 1. pick an algorithm (by hand or via the performance model),
//! 2. build its plan (the generated per-PE code and routing),
//! 3. run it on the cycle-level fabric simulator,
//! 4. compare the measured cycles with the model prediction.
//!
//! Run with `cargo run --release -p wse-examples --bin quickstart`.

use wse_collectives::prelude::*;
use wse_examples::{print_run_summary, sample_vector};

fn main() {
    let machine = Machine::wse2();
    let p: u32 = 64; // PEs in the row
    let b: u32 = 256; // 1 KB of f32 values per PE

    println!("# Wafer-scale Reduce quickstart: {p} PEs, {} bytes per PE\n", b * 4);

    let inputs: Vec<Vec<f32>> = (0..p as usize).map(|i| sample_vector(i, b as usize)).collect();
    let expected = expected_reduce(&inputs, ReduceOp::Sum);

    // 1. Every fixed pattern of the paper, plus the Auto-Gen schedule.
    for pattern in ReducePattern::all() {
        let plan = reduce_1d_plan(pattern, p, b, ReduceOp::Sum, &machine);
        let outcome = run_plan(&plan, &inputs, &RunConfig::default()).expect("plan runs");
        assert_outputs_close(&outcome, &expected, 1e-4);
        let predicted = pattern.model_algorithm().cycles(p as u64, b as u64, &machine, None);
        print_run_summary(
            &format!("Reduce / {}", pattern.name()),
            &plan,
            outcome.runtime_cycles(),
        );
        println!("{:<40} {predicted:>10.0} cycles (model prediction)", "");
    }

    // 2. Model-driven selection: let the model pick the fixed algorithm.
    let selected = select_reduce_1d(p, b, ReduceOp::Sum, &machine);
    println!("\nmodel-selected fixed algorithm: {}", selected.algorithm);

    // 3. AllReduce: reduce-then-broadcast with the selected pattern.
    let allreduce = select_allreduce_1d(p, b, ReduceOp::Sum, &machine);
    let outcome = run_plan(&allreduce.plan, &inputs, &RunConfig::default()).expect("plan runs");
    assert_outputs_close(&outcome, &expected, 1e-4);
    print_run_summary(
        &format!("AllReduce / {}", allreduce.algorithm),
        &allreduce.plan,
        outcome.runtime_cycles(),
    );

    println!("\nAll results verified against a serial reference reduction.");
}
