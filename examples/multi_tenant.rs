//! Multi-tenant serving: two tenants with unequal cycle budgets share one
//! `CollectiveService`, and the admission layer keeps the greedy one from
//! crowding out the other.
//!
//! Demonstrates the model-driven admission controller on top of the
//! serving front-end:
//!
//! 1. stand up a `CollectiveService` whose `AdmissionConfig` enables all
//!    three policies: a per-request predicted-cycle ceiling, token-bucket
//!    cycle budgets per tenant (generous for `alpha`, tight for `beta`),
//!    and shortest-predicted-job-first batch formation under a per-batch
//!    cycle cut,
//! 2. submit identical rounds of traffic for both tenants with
//!    `submit_as`; `beta`'s tight bucket runs dry mid-round, so its excess
//!    requests are *deferred* — parked in a bounded side queue until the
//!    bucket refills — rather than rejected,
//! 3. submit one oversized all-to-all that the model prices above the
//!    ceiling and show it failing fast at submit with
//!    `CollectiveError::OverBudget` — no plan generated, no cycles spent,
//! 4. wait on every handle, verify the answers, and print per-tenant
//!    throughput, deferral counts and deferral waits (from each response's
//!    `AdmissionInfo`), plus the service-wide admission counters.
//!
//! Run with `cargo run --release -p wse-examples --bin multi_tenant`
//! (add `--quick` for the CI smoke configuration).

use std::time::{Duration, Instant};

use wse_collectives::prelude::*;
use wse_examples::sample_vector;

const ALPHA: TenantId = TenantId(1);
const BETA: TenantId = TenantId(2);

fn tenant_name(tenant: TenantId) -> &'static str {
    if tenant == ALPHA {
        "alpha"
    } else {
        "beta"
    }
}

/// Per-tenant tallies accumulated from the responses.
#[derive(Default)]
struct Tally {
    completed: u64,
    deferred: u64,
    total_wait: Duration,
    max_wait: Duration,
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (rounds, per_tenant) = if quick { (4, 6) } else { (10, 8) };

    // The shared workload: every request is the same mid-size reduction, so
    // the only difference between the tenants is their budget.
    let request = CollectiveRequest::reduce(Topology::line(16), 256);
    let machine = Machine::wse2();
    let cost =
        request.predicted_cycles(&machine).expect("the example request is valid").ceil() as u64;

    // 1. Unequal budgets. `alpha` can burst a whole round and refills far
    //    faster than it submits; `beta` can burst two requests and refills
    //    a few hundred request-costs per second, so each round pushes it
    //    into deferral and the refill releases the backlog between rounds.
    let alpha_budget = TenantBudget::new(cost * per_tenant as u64 * 2, cost as f64 * 2_000.0);
    let beta_budget = TenantBudget::new(cost * 2, cost as f64 * 400.0);
    let ceiling = cost * 400;
    let admission = AdmissionConfig::disabled()
        .with_max_predicted_cycles(ceiling)
        .with_order(BatchOrder::ShortestPredictedFirst)
        .with_max_batch_cycles(cost * 8)
        .with_tenant_budget(ALPHA, alpha_budget)
        .with_tenant_budget(BETA, beta_budget)
        .with_deferred_capacity(128);
    let service = CollectiveService::with_config(ServiceConfig {
        queue_capacity: 128,
        max_batch: 16,
        max_wait: Duration::from_micros(200),
        admission,
        ..ServiceConfig::default()
    });

    println!("# Multi-tenant serving: {rounds} rounds x {per_tenant} requests per tenant");
    println!("request cost (model): {cost} cycles");
    println!(
        "alpha budget: burst {} cycles, refill {:.0} cycles/s",
        alpha_budget.burst_cycles, alpha_budget.refill_cycles_per_sec
    );
    println!(
        "beta  budget: burst {} cycles, refill {:.0} cycles/s\n",
        beta_budget.burst_cycles, beta_budget.refill_cycles_per_sec
    );

    // 2. Identical traffic for both tenants, round by round. The pause
    //    between rounds is where `beta`'s bucket refills and the batcher
    //    releases its deferred backlog in submission order.
    let start = Instant::now();
    let mut handles = Vec::new();
    for round in 0..rounds {
        for slot in 0..per_tenant {
            for tenant in [ALPHA, BETA] {
                let inputs: Vec<Vec<f32>> =
                    (0..16).map(|pe| sample_vector(pe + round * 7919 + slot * 131, 256)).collect();
                let handle = service
                    .submit_as(request, inputs.clone(), tenant)
                    .expect("budgeted submissions defer, they do not fail");
                handles.push((tenant, inputs, handle));
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // 3. The ceiling: this all-to-all is priced far above the configured
    //    per-request maximum, so admission rejects it before any plan is
    //    generated or queued.
    let oversized = CollectiveRequest::all_to_all(Topology::line(16), 65_520);
    let oversized_inputs: Vec<Vec<f32>> = (0..16).map(|pe| sample_vector(pe, 65_520)).collect();
    match service.submit_as(oversized, oversized_inputs, BETA) {
        Err(CollectiveError::OverBudget { predicted, limit }) => {
            println!("oversized all-to-all rejected at submit: predicted {predicted} cycles > limit {limit}\n");
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }

    // 4. Collect the answers; every deferred response says how long it
    //    waited for budget.
    let mut tallies = [Tally::default(), Tally::default()];
    for (tenant, inputs, handle) in handles {
        let response = handle.wait();
        let outcome = response.result.expect("every admitted request completes");
        let expected = expected_reduce(&inputs, ReduceOp::Sum);
        assert_outputs_close(&outcome, &expected, 1e-4);

        let tally = &mut tallies[usize::from(tenant != ALPHA)];
        tally.completed += 1;
        let info = response.admission.expect("admission is active");
        assert_eq!(info.tenant, tenant);
        if let AdmissionOutcome::DeferredThenAdmitted { wait } = info.outcome {
            tally.deferred += 1;
            tally.total_wait += wait;
            tally.max_wait = tally.max_wait.max(wait);
        }
    }
    let elapsed = start.elapsed();

    println!(
        "{:>6} {:>10} {:>9} {:>13} {:>13} {:>13}",
        "tenant", "completed", "deferred", "thruput(r/s)", "mean-wait(ms)", "max-wait(ms)"
    );
    for (tenant, tally) in [ALPHA, BETA].into_iter().zip(&tallies) {
        let mean_wait = if tally.deferred > 0 {
            tally.total_wait.as_secs_f64() * 1e3 / tally.deferred as f64
        } else {
            0.0
        };
        println!(
            "{:>6} {:>10} {:>9} {:>13.1} {:>13.2} {:>13.2}",
            tenant_name(tenant),
            tally.completed,
            tally.deferred,
            tally.completed as f64 / elapsed.as_secs_f64().max(1e-9),
            mean_wait,
            tally.max_wait.as_secs_f64() * 1e3,
        );
    }

    let stats = service.shutdown();
    println!(
        "\nservice counters: submitted {}, completed {}, deferred {}, over_budget {}, deferral_overflow {}",
        stats.submitted, stats.completed, stats.deferred, stats.over_budget, stats.deferral_overflow
    );

    let expected = (rounds * per_tenant * 2) as u64;
    assert_eq!(stats.completed, expected, "every admitted request completes");
    assert_eq!(stats.over_budget, 1, "exactly the oversized request was rejected");
    assert_eq!(tallies[0].deferred, 0, "alpha's budget never runs dry");
    assert!(tallies[1].deferred > 0, "beta's tight budget must defer");
    println!("\nall {expected} responses verified against the expected reduction");
}
