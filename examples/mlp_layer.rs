//! A sharded MLP layer on one PE row: the inference workload the collective
//! suite exists for.
//!
//! The layer computes `y = W·x` with the weight matrix `W` (`m × n`)
//! column-partitioned over `P` PEs. One forward pass is four steps, three
//! of them collectives chained through the suite's shared shard-at-index
//! layout — no host-side reshuffling between calls:
//!
//! 1. **Scatter** the activation `x` from the root: PE `k` receives its
//!    `n/P`-element shard.
//! 2. **Local GEMV**: PE `k` computes the partial product
//!    `y_k = W[:, cols_k] · x_k` (an `m`-vector; modelled host-side — the
//!    simulator executes communication, not FLOPs).
//! 3. **ReduceScatter** the partials: PE `k` ends with the fully reduced
//!    shard `k` of `y` (`m/P` elements) — this is where a tensor-parallel
//!    transformer would apply its sharded activation function.
//! 4. **AllGather** the shards: every PE ends with the complete `y`.
//!
//! Every collective resolves through `Schedule::Auto`, so the run also
//! shows the model's predictions next to the simulator's measurements.
//!
//! Run with `cargo run --release -p wse-examples --bin mlp_layer`
//! (`-- --quick` for the CI smoke size).

use wse_collectives::prelude::*;
use wse_examples::{print_run_summary, sample_value, sample_vector};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p: u32 = if quick { 8 } else { 16 }; // PEs in the row
    let n: usize = if quick { 64 } else { 512 }; // columns of W (length of x)
    let m: usize = if quick { 32 } else { 256 }; // rows of W (length of y)
    let x_chunk = n / p as usize;
    let y_chunk = m / p as usize;

    println!("# MLP layer y = W x: W is {m}x{n}, column-sharded over {p} PEs\n");

    let mut session = Session::new();
    let x = sample_vector(424_242, n);

    // Step 1: Scatter x from the root. The outputs ARE the per-PE shards
    // the local GEMV consumes.
    let scatter = CollectiveRequest::scatter(Topology::line(p), n as u32);
    let resolved = session.plan(&scatter).expect("scatter resolves");
    let scattered = session.run(&scatter, std::slice::from_ref(&x)).expect("scatter runs");
    let mut total = scattered.runtime_cycles();
    print_run_summary("1. Scatter x (root -> shards)", &resolved.plan, scattered.runtime_cycles());

    // Step 2: local GEMV partials. PE k owns the column block
    // [k·n/P, (k+1)·n/P) and multiplies it by its x shard.
    let mut partials: Vec<Vec<f32>> = Vec::with_capacity(p as usize);
    for (pe, (_, x_shard)) in scattered.outputs.iter().enumerate() {
        assert_eq!(x_shard.len(), x_chunk, "scatter delivers n/P-element shards");
        let mut partial = vec![0.0f32; m];
        for (local_col, &xv) in x_shard.iter().enumerate() {
            let col = pe * x_chunk + local_col;
            for (row, value) in partial.iter_mut().enumerate() {
                *value += sample_value(row * n + col) * xv;
            }
        }
        partials.push(partial);
    }

    // Step 3: ReduceScatter the partial y vectors; PE k keeps the reduced
    // shard k at its home offset.
    let reduce_scatter = CollectiveRequest::reduce_scatter(Topology::line(p), m as u32);
    let resolved = session.plan(&reduce_scatter).expect("reduce-scatter resolves");
    let reduced = session.run(&reduce_scatter, &partials).expect("reduce-scatter runs");
    total += reduced.runtime_cycles();
    print_run_summary("2. ReduceScatter partial y", &resolved.plan, reduced.runtime_cycles());

    // Step 4: AllGather the y shards — the outputs of the ReduceScatter
    // feed straight in (same shard-at-index layout).
    let y_shards: Vec<Vec<f32>> = reduced.outputs.iter().map(|(_, s)| s.clone()).collect();
    assert!(y_shards.iter().all(|s| s.len() == y_chunk));
    let allgather = CollectiveRequest::allgather(Topology::line(p), m as u32);
    let resolved = session.plan(&allgather).expect("allgather resolves");
    let gathered = session.run(&allgather, &y_shards).expect("allgather runs");
    total += gathered.runtime_cycles();
    print_run_summary("3. AllGather y shards", &resolved.plan, gathered.runtime_cycles());

    // Verify against the dense reference product.
    let mut reference = vec![0.0f32; m];
    for (row, out) in reference.iter_mut().enumerate() {
        for (col, &xv) in x.iter().enumerate() {
            *out += sample_value(row * n + col) * xv;
        }
    }
    for (at, y) in &gathered.outputs {
        assert_eq!(y.len(), m);
        for (row, (&got, &want)) in y.iter().zip(&reference).enumerate() {
            let err = (got - want).abs() / want.abs().max(1e-6);
            assert!(err < 1e-3, "PE {at}, y[{row}]: {got} vs reference {want} (rel err {err})");
        }
    }

    let machine = Machine::wse2();
    println!(
        "\nforward pass communication: {total} cycles ({:.3} us at 850 MHz)",
        machine.cycles_to_us(total as f64)
    );
    println!("y = W x verified against the dense reference on all {p} PEs.");
}
